(* System-level soak test: one kernel running everything at once —
   HTTP and NFS event grafts, an application-directed read-ahead graft, a
   page-eviction graft under memory pressure, a delegate-grafted scheduler,
   and a misbehaving graft thrown in mid-run — for tens of simulated
   milliseconds. At the end: no crashed processes, nothing deadlocked
   except the intentionally-parked daemons, every transaction resolved,
   every kernel invariant intact. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Event_point = Vino_core.Event_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Txn = Vino_txn.Txn
module File = Vino_fs.File
module Readahead = Vino_fs.Readahead
module Frame = Vino_vmem.Frame
module Vas = Vino_vmem.Vas
module Evict = Vino_vmem.Evict
module Runq = Vino_sched.Runq
module Httpd = Vino_net.Httpd
module Nfsd = Vino_net.Nfsd

let app = Cred.user "soak" ~limits:(Rlimit.unlimited ())

let seal_exn kernel items =
  match Kernel.seal kernel (Vino_vm.Asm.assemble_exn items) with
  | Ok i -> i
  | Error e -> Alcotest.fail e

let test_full_system_soak () =
  let kernel = Kernel.create ~mem_words:(1 lsl 17) () in
  let engine = kernel.Kernel.engine in

  (* file system with a grafted read-ahead *)
  let disk = Vino_fs.Disk.create engine () in
  let cache = Vino_fs.Cache.create ~capacity:64 () in
  let file =
    File.openf ~kernel ~cache ~disk ~name:"soak" ~first_block:0 ~blocks:256 ()
  in
  (match
     Graft_point.replace (File.ra_point file) kernel ~cred:app
       ~shared_words:16
       (seal_exn kernel
          (Readahead.app_directed_source ~lock_kcall:(File.ra_lock_name file)))
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);

  (* virtual memory under pressure with a grafted eviction policy *)
  let frames = Frame.create_table ~frames:24 in
  let evictor = Evict.create kernel ~frames () in
  let vas = Vas.create kernel ~name:"soak-vas" () in
  Evict.register_vas evictor vas;
  (match
     Graft_point.replace (Vas.evict_point vas) kernel ~cred:app
       ~shared_words:64 ~heap_words:1024
       (seal_exn kernel
          (Vino_vmem.Grafts.protect_hot_pages_source
             ~lock_kcall:(Vas.lock_name vas) ()))
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);

  (* scheduler with a handoff delegate *)
  let runq = Runq.create kernel () in
  let t1 = Runq.spawn_task runq ~name:"worker-a" in
  let t2 = Runq.spawn_task runq ~name:"worker-b" in
  Runq.join_group runq t1 ~group:1;
  Runq.join_group runq t2 ~group:1;
  (match
     Graft_point.replace (Runq.delegate_point t1) kernel ~cred:app
       (seal_exn kernel
          (Vino_sched.Grafts.handoff_source ~target:(Runq.task_id t2)))
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);

  (* kernel HTTP and NFS servers *)
  let httpd = Httpd.create kernel () in
  Httpd.add_document httpd ~path:1 ~size:4096;
  (match Httpd.install httpd ~cred:app with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let nfsd = Nfsd.create kernel () in
  Nfsd.export nfsd ~fileid:1 file;
  (match Nfsd.install nfsd ~cred:app with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);

  (* driver processes *)
  ignore
    (Engine.spawn engine ~name:"reader" (fun () ->
         for k = 0 to 39 do
           let block = k * 37 mod 256 in
           Readahead.announce kernel (File.ra_point file)
             ((k + 1) * 37 mod 256);
           ignore (File.read file ~cred:app ~block);
           Engine.delay (Vino_txn.Tcosts.us 500.)
         done));
  ignore
    (Engine.spawn engine ~name:"toucher" (fun () ->
         for k = 0 to 79 do
           ignore (Evict.touch evictor vas ~vpage:(k mod 40));
           Engine.delay (Vino_txn.Tcosts.us 300.)
         done));
  ignore
    (Engine.spawn engine ~name:"scheduler" (fun () ->
         for _ = 0 to 59 do
           ignore (Runq.schedule runq ~cred:app);
           Engine.delay (Vino_txn.Tcosts.us 200.)
         done));
  ignore
    (Engine.spawn engine ~name:"clients" (fun () ->
         for k = 0 to 19 do
           Httpd.get httpd ~path:(if k mod 3 = 0 then 1 else 99);
           Nfsd.read_request nfsd ~fileid:1 ~block:(k mod 256);
           Engine.delay (Vino_txn.Tcosts.us 1_500.)
         done));
  (* a misbehaving graft arrives mid-run and dies without hurting anyone *)
  ignore
    (Engine.spawn engine ~name:"saboteur" (fun () ->
         Engine.delay (Vino_txn.Tcosts.us 8_000.);
         match
           Graft_point.replace (File.ra_point file) kernel ~cred:app
             ~shared_words:16
             (seal_exn kernel
                [
                  Li (Vino_vm.Asm.r1, 1);
                  Li (Vino_vm.Asm.r2, 0);
                  Alu
                    ( Vino_vm.Insn.Div,
                      Vino_vm.Asm.r0,
                      Vino_vm.Asm.r1,
                      Vino_vm.Asm.r2 );
                  Ret;
                ])
         with
         | Ok () -> ()
         | Error e -> Alcotest.fail e));

  Kernel.run kernel;

  (* -------- invariants after the storm -------- *)
  (match Engine.failures engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s crashed: %s" name (Printexc.to_string exn));
  (* only the permanent daemons may be parked on their wait queues *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "blocked process %s is a daemon" name)
        true
        (List.mem name [ "disk"; "prefetchd"; "pagedaemon" ]))
    (Engine.blocked engine);
  Alcotest.(check int) "all transactions resolved" 0
    (Txn.live kernel.Kernel.txn_mgr);
  Alcotest.(check bool) "plenty of commits" true
    (Txn.commits kernel.Kernel.txn_mgr > 100);
  (* the saboteur's graft died; the kernel kept serving *)
  Alcotest.(check bool) "saboteur graft removed" false
    (Graft_point.grafted (File.ra_point file));
  Alcotest.(check bool) "its failure was audited" true
    (List.length (Vino_core.Audit.failures kernel.Kernel.audit) >= 1);
  Alcotest.(check int) "every HTTP request answered" 20
    (List.length (Httpd.responses httpd));
  Alcotest.(check int) "every NFS request answered" 20
    (List.length (Nfsd.responses nfsd));
  Alcotest.(check bool) "eviction graft still in place" true
    (Graft_point.grafted (Vas.evict_point vas));
  Alcotest.(check bool) "delegations happened" true
    (Runq.delegate_redirects runq > 0)

let test_determinism () =
  (* the whole simulation is deterministic: two identical soak-like runs
     end at the same virtual time with identical counters *)
  let run () =
    let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
    let engine = kernel.Kernel.engine in
    let disk = Vino_fs.Disk.create engine () in
    let cache = Vino_fs.Cache.create ~capacity:16 () in
    let file =
      File.openf ~kernel ~cache ~disk ~name:"det" ~first_block:0 ~blocks:64
        ()
    in
    ignore
      (Engine.spawn engine ~name:"reader" (fun () ->
           for k = 0 to 19 do
             ignore (File.read file ~cred:app ~block:(k * 13 mod 64))
           done));
    Kernel.run kernel;
    (Engine.now engine, File.cache_hits file, Txn.commits kernel.Kernel.txn_mgr)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical end states" true (a = b)

let suite =
  [
    ( "soak",
      [
        Alcotest.test_case "full system under concurrent load" `Slow
          test_full_system_soak;
        Alcotest.test_case "simulation is deterministic" `Quick
          test_determinism;
      ] );
  ]
