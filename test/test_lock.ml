(* Tests for the time-out–based lock manager. *)

module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Lock = Vino_txn.Lock
module Lock_policy = Vino_txn.Lock_policy

let fixture ?(tick = 1000) ?policy ?timeout () =
  let e = Engine.create () in
  let wheel = Tick.create e ~tick () in
  let lock = Lock.create e ~wheel ?policy ?timeout ~name:"test-lock" () in
  (e, lock)

let acquire_exn lock mode owner =
  match Lock.acquire lock mode owner () with
  | Lock.Granted h -> h
  | Lock.Gave_up r -> Alcotest.failf "unexpected give-up: %s" r

let test_uncontended_shared () =
  let e, lock = fixture () in
  let done_ = ref 0 in
  for k = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           let h =
             acquire_exn lock Lock_policy.Shared
               (Lock.plain_owner (Printf.sprintf "reader%d" k))
           in
           incr done_;
           Lock.release h))
  done;
  Engine.run e;
  Alcotest.(check int) "all readers ran" 3 !done_;
  Alcotest.(check int) "acquisitions" 3 (Lock.acquisitions lock);
  Alcotest.(check int) "no contention" 0 (Lock.contentions lock);
  Alcotest.(check int) "no holders left" 0 (List.length (Lock.holders lock))

let test_exclusive_blocks () =
  let e, lock = fixture () in
  let order = ref [] in
  ignore
    (Engine.spawn e ~name:"first" (fun () ->
         let h = acquire_exn lock Exclusive (Lock.plain_owner "first") in
         order := "first-in" :: !order;
         Engine.delay 5_000;
         order := "first-out" :: !order;
         Lock.release h));
  ignore
    (Engine.spawn e ~name:"second" (fun () ->
         Engine.delay 100;
         let h = acquire_exn lock Exclusive (Lock.plain_owner "second") in
         order := "second-in" :: !order;
         Lock.release h));
  Engine.run e;
  Alcotest.(check (list string))
    "strict mutual exclusion"
    [ "first-in"; "first-out"; "second-in" ]
    (List.rev !order);
  Alcotest.(check int) "one contention" 1 (Lock.contentions lock)

let test_readers_share_writer_waits () =
  let e, lock = fixture () in
  let trace = ref [] in
  let reader k =
    ignore
      (Engine.spawn e (fun () ->
           let h =
             acquire_exn lock Shared (Lock.plain_owner (Printf.sprintf "r%d" k))
           in
           trace := Printf.sprintf "r%d@%d" k (Engine.now e) :: !trace;
           Engine.delay 1_000;
           Lock.release h))
  in
  reader 1;
  reader 2;
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 10;
         let h = acquire_exn lock Exclusive (Lock.plain_owner "w") in
         trace := Printf.sprintf "w@%d" (Engine.now e) :: !trace;
         Lock.release h));
  Engine.run e;
  match List.rev !trace with
  | [ r1; r2; w ] ->
      Alcotest.(check bool) "readers overlapped" true
        (String.length r1 > 0 && String.length r2 > 0);
      Alcotest.(check bool) "writer after readers" true
        (String.split_on_char '@' w |> List.rev |> List.hd |> int_of_string
        >= 1_000)
  | t -> Alcotest.failf "unexpected trace length %d" (List.length t)

let test_timeout_aborts_holder () =
  (* The heart of §3.2: a waiter's timeout asks the holding transaction to
     abort. We model the holder as an owner with an abort hook that releases
     the lock. *)
  let e, lock = fixture ~tick:100 ~timeout:1_000 () in
  let abort_asked = ref None in
  let held = ref None in
  let hog_owner =
    {
      Lock.name = "hog";
      request_abort =
        Some
          (fun reason ->
            abort_asked := Some reason;
            match !held with
            | Some h ->
                held := None;
                Lock.release ~during_abort:true h
            | None -> ());
    }
  in
  ignore
    (Engine.spawn e ~name:"hog" (fun () ->
         match Lock.acquire lock Exclusive hog_owner () with
         | Lock.Granted h -> held := Some h (* never releases voluntarily *)
         | Lock.Gave_up _ -> Alcotest.fail "hog should get the lock"));
  let victim_done = ref (-1) in
  ignore
    (Engine.spawn e ~name:"victim" (fun () ->
         (* start well after the hog's (transaction-priced) acquisition *)
         Engine.delay 5_000;
         let h = acquire_exn lock Exclusive (Lock.plain_owner "victim") in
         victim_done := Engine.now e;
         Lock.release h));
  Engine.run e;
  (match !abort_asked with
  | Some reason ->
      Alcotest.(check bool) "reason names the lock" true
        (String.length reason > 0)
  | None -> Alcotest.fail "holder was never asked to abort");
  Alcotest.(check bool) "victim eventually ran" true (!victim_done > 0);
  Alcotest.(check bool) "at least one timeout fired" true
    (Lock.timeouts_fired lock >= 1);
  Alcotest.(check int) "one holder abort requested" 1
    (Lock.holder_aborts_requested lock)

let test_unabortable_holder_waiter_keeps_waiting () =
  let e, lock = fixture ~tick:100 ~timeout:500 () in
  let got_it = ref false in
  ignore
    (Engine.spawn e ~name:"plain-hog" (fun () ->
         let h = acquire_exn lock Exclusive (Lock.plain_owner "plain-hog") in
         Engine.delay 5_000;
         Lock.release h));
  ignore
    (Engine.spawn e ~name:"waiter" (fun () ->
         Engine.delay 10;
         let h = acquire_exn lock Exclusive (Lock.plain_owner "waiter") in
         got_it := true;
         Lock.release h));
  Engine.run e;
  Alcotest.(check bool) "waiter finally granted" true !got_it;
  Alcotest.(check bool) "timeouts fired but harmless" true
    (Lock.timeouts_fired lock >= 1);
  Alcotest.(check int) "no aborts possible" 0
    (Lock.holder_aborts_requested lock)

let test_fruitless_timeouts_bounded () =
  (* Regression: when *no* holder is abortable and none ever releases, the
     waiter used to re-arm its time-out forever — a livelock that also kept
     the engine's queue non-empty for good. After
     [fruitless_timeout_bound] consecutive fruitless expiries the waiter
     must give up. *)
  let e, lock = fixture ~tick:100 ~timeout:500 () in
  let outcome = ref None in
  ignore
    (Engine.spawn e ~name:"immortal-hog" (fun () ->
         (* Acquires and never releases: a plain (unabortable) owner. *)
         ignore (acquire_exn lock Exclusive (Lock.plain_owner "immortal"))));
  ignore
    (Engine.spawn e ~name:"waiter" (fun () ->
         Engine.delay 10;
         outcome :=
           Some (Lock.acquire lock Exclusive (Lock.plain_owner "waiter") ())));
  Engine.run e;
  (match !outcome with
  | Some (Lock.Gave_up _) -> ()
  | Some (Lock.Granted _) -> Alcotest.fail "granted a lock nobody released"
  | None -> Alcotest.fail "waiter still waiting: livelock not bounded");
  Alcotest.(check int) "give-up counted" 1 (Lock.fruitless_giveups lock);
  Alcotest.(check int) "waiter dequeued" 0 (List.length (Lock.waiters lock));
  Alcotest.(check bool) "tolerated the full bound first" true
    (Lock.timeouts_fired lock >= Lock.fruitless_timeout_bound)

let test_poll_gives_up () =
  let e, lock = fixture ~tick:100 ~timeout:1_000 () in
  ignore
    (Engine.spawn e ~name:"holder" (fun () ->
         let h = acquire_exn lock Exclusive (Lock.plain_owner "holder") in
         Engine.delay 10_000;
         Lock.release h));
  let result = ref None in
  ignore
    (Engine.spawn e ~name:"doomed" (fun () ->
         Engine.delay 10;
         let aborted = ref false in
         let poll () = if !aborted then Some "my txn died" else None in
         let (_ : Engine.cancel) =
           Engine.after e 300 (fun () -> aborted := true)
         in
         result :=
           Some (Lock.acquire lock Exclusive (Lock.plain_owner "doomed") ~poll ())));
  Engine.run e;
  match !result with
  | Some (Lock.Gave_up "my txn died") -> ()
  | Some (Lock.Granted _) -> Alcotest.fail "should have given up"
  | Some (Lock.Gave_up r) -> Alcotest.failf "wrong reason %s" r
  | None -> Alcotest.fail "acquire never returned"

let test_fifo_fair_policy_orders_waiters () =
  let e, lock = fixture ~policy:Lock_policy.fifo_fair () in
  let order = ref [] in
  ignore
    (Engine.spawn e ~name:"holder" (fun () ->
         let h = acquire_exn lock Exclusive (Lock.plain_owner "holder") in
         Engine.delay 1_000;
         Lock.release h));
  for k = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           Engine.delay (10 * k);
           let h =
             acquire_exn lock Exclusive
               (Lock.plain_owner (Printf.sprintf "w%d" k))
           in
           order := k :: !order;
           Engine.delay 100;
           Lock.release h))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO grant order" [ 1; 2; 3 ]
    (List.rev !order)

let test_reader_priority_vs_fifo () =
  (* Under reader-priority, a late reader overtakes a waiting writer; under
     fifo-fair it must queue behind. This is the Fig 4/5 policy difference
     made observable. *)
  let run_with policy =
    let e, lock = fixture ~policy () in
    let events = ref [] in
    ignore
      (Engine.spawn e ~name:"r1" (fun () ->
           let h = acquire_exn lock Shared (Lock.plain_owner "r1") in
           Engine.delay 1_000;
           Lock.release h));
    ignore
      (Engine.spawn e ~name:"writer" (fun () ->
           Engine.delay 10;
           let h = acquire_exn lock Exclusive (Lock.plain_owner "writer") in
           events := "writer" :: !events;
           Engine.delay 10;
           Lock.release h));
    ignore
      (Engine.spawn e ~name:"r2" (fun () ->
           Engine.delay 20;
           let h = acquire_exn lock Shared (Lock.plain_owner "r2") in
           events := "r2" :: !events;
           Engine.delay 10;
           Lock.release h));
    Engine.run e;
    List.rev !events
  in
  Alcotest.(check (list string))
    "reader priority lets r2 jump the writer" [ "r2"; "writer" ]
    (run_with Lock_policy.reader_priority);
  Alcotest.(check (list string))
    "fifo-fair makes r2 queue" [ "writer"; "r2" ]
    (run_with Lock_policy.fifo_fair)

let test_factored_policy_costs_more () =
  (* Fig 4 vs Fig 5: same decisions, extra indirection cycles. *)
  let elapsed policy =
    let e, lock = fixture ~policy () in
    let t = ref 0 in
    ignore
      (Engine.spawn e (fun () ->
           let before = Engine.now e in
           let h = acquire_exn lock Exclusive (Lock.plain_owner "x") in
           Lock.release h;
           t := Engine.now e - before));
    Engine.run e;
    !t
  in
  let conventional = elapsed Lock_policy.reader_priority in
  let factored = elapsed (Lock_policy.factored Lock_policy.reader_priority) in
  Alcotest.(check int) "two indirections of 35 cycles" 70
    (factored - conventional)

let test_double_release_is_idempotent () =
  let e, lock = fixture () in
  ignore
    (Engine.spawn e (fun () ->
         let h = acquire_exn lock Exclusive (Lock.plain_owner "x") in
         Lock.release h;
         Lock.release h));
  Engine.run e;
  Alcotest.(check (list string)) "no failures" []
    (List.map fst (Engine.failures e));
  Alcotest.(check int) "no holders left" 0 (List.length (Lock.holders lock))

(* Property: the lock manager never grants conflicting modes
   simultaneously, for arbitrary workloads of reader/writer processes. *)
let prop_no_conflicting_grants =
  QCheck2.Test.make ~name:"no conflicting holders ever coexist" ~count:60
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (triple bool (int_range 0 500) (int_range 1 800)))
    (fun jobs ->
      let e, lock = fixture ~tick:64 ~timeout:4_000 () in
      let violated = ref false in
      let readers = ref 0 and writers = ref 0 in
      List.iteri
        (fun k (is_reader, start, hold) ->
          ignore
            (Engine.spawn e (fun () ->
                 Engine.delay start;
                 let mode : Lock_policy.mode =
                   if is_reader then Shared else Exclusive
                 in
                 let h =
                   acquire_exn lock mode
                     (Lock.plain_owner (Printf.sprintf "j%d" k))
                 in
                 (if is_reader then incr readers else incr writers);
                 if !writers > 1 || (!writers = 1 && !readers > 0) then
                   violated := true;
                 Engine.delay hold;
                 (if is_reader then decr readers else decr writers);
                 Lock.release h)))
        jobs;
      Engine.run e;
      (not !violated) && Engine.failures e = [])

let suite =
  [
    ( "lock",
      [
        Alcotest.test_case "uncontended shared locks" `Quick
          test_uncontended_shared;
        Alcotest.test_case "exclusive blocks until release" `Quick
          test_exclusive_blocks;
        Alcotest.test_case "readers share, writer waits" `Quick
          test_readers_share_writer_waits;
        Alcotest.test_case "waiter timeout aborts abortable holder" `Quick
          test_timeout_aborts_holder;
        Alcotest.test_case "unabortable holder: waiter persists" `Quick
          test_unabortable_holder_waiter_keeps_waiting;
        Alcotest.test_case "fruitless time-outs are bounded" `Quick
          test_fruitless_timeouts_bounded;
        Alcotest.test_case "waiter gives up when its txn dies" `Quick
          test_poll_gives_up;
        Alcotest.test_case "fifo-fair grants in arrival order" `Quick
          test_fifo_fair_policy_orders_waiters;
        Alcotest.test_case "reader-priority vs fifo-fair (Fig 4/5)" `Quick
          test_reader_priority_vs_fifo;
        Alcotest.test_case "factored policy charges indirections" `Quick
          test_factored_policy_costs_more;
        Alcotest.test_case "double release is idempotent" `Quick
          test_double_release_is_idempotent;
        QCheck_alcotest.to_alcotest prop_no_conflicting_grants;
      ] );
  ]
