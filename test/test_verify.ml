(* Tests for the static graft verifier: the abstract domain, the CFG, the
   classification of memory accesses and indirect kernel calls, the lint
   diagnostics, the rewriter's verified fast path, and the link-time
   rejection of provably unsafe grafts.

   The key property is *conservative soundness*: a Safe verdict licenses
   the rewriter to elide a run-time check, so eliding must never change
   behaviour. The differential tests run the same graft with and without
   elided checks under adversarial inputs and require identical memory and
   outcome — and strictly fewer cycles on the verified side. *)

module Insn = Vino_vm.Insn
module Mem = Vino_vm.Mem
module Cpu = Vino_vm.Cpu
module Asm = Vino_vm.Asm
module Absval = Vino_verify.Absval
module Cfg = Vino_verify.Cfg
module Report = Vino_verify.Report
module Verify = Vino_verify.Verify
module Rewrite = Vino_misfit.Rewrite
module Kernel = Vino_core.Kernel
module Linker = Vino_core.Linker

let absv = Alcotest.testable Absval.pp Absval.equal
let num lo hi = Absval.Num (Absval.itv lo hi)
let seg lo hi = Absval.Seg (Absval.itv lo hi)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let analyse ?entry ?callable ?stage ~words prog =
  Verify.analyse (Verify.config ?entry ?callable ?stage ~words ()) prog

let has_diag severity report sub =
  List.exists
    (fun d ->
      d.Report.severity = severity && contains d.Report.message sub)
    report.Report.diags

let diag_at severity report index sub =
  List.exists
    (fun d ->
      d.Report.severity = severity
      && d.Report.index = Some index
      && contains d.Report.message sub)
    report.Report.diags

let count_sandbox code =
  Array.fold_left
    (fun acc i -> match i with Insn.Sandbox _ -> acc + 1 | _ -> acc)
    0 code

let count_checkcall code =
  Array.fold_left
    (fun acc i -> match i with Insn.Checkcall _ -> acc + 1 | _ -> acc)
    0 code

let process_exn ?verifier prog =
  match Rewrite.process ?verifier prog with
  | Ok code -> code
  | Error e -> Alcotest.fail e

(* ------------------------------ Absval -------------------------------- *)

let test_absval_join_widen () =
  Alcotest.check absv "num hull" (num 0 9)
    (Absval.join (num 0 3) (num 5 9));
  Alcotest.check absv "seg hull" (seg 0 8) (Absval.join (seg 0 0) (seg 8 8));
  Alcotest.check absv "mixed kinds lose" Absval.Top
    (Absval.join (seg 0 0) (num 0 0));
  Alcotest.check absv "bot is identity" (num 1 2)
    (Absval.join Absval.Bot (num 1 2));
  Alcotest.check absv "widen jumps a growing bound to infinity"
    (num 0 max_int)
    (Absval.widen (num 0 3) (num 0 5));
  Alcotest.check absv "widen is stable on shrinking bounds" (num 0 3)
    (Absval.widen (num 0 3) (num 1 3));
  Alcotest.check absv "widen keeps the pointer kind"
    (Absval.Seg (Absval.itv 0 max_int))
    (Absval.widen (seg 0 1) (seg 0 2))

let test_absval_alu () =
  Alcotest.check absv "seg + bounded num stays a pointer" (seg 0 7)
    (Absval.alu Add (seg 0 0) (num 0 7));
  Alcotest.check absv "stk - 1" (Absval.Stk (Absval.const_itv (-1)))
    (Absval.alu Sub (Absval.Stk (Absval.const_itv 0)) (num 1 1));
  Alcotest.check absv "seg - seg is the offset difference" (num 2 3)
    (Absval.alu Sub (seg 4 4) (seg 1 2));
  Alcotest.check absv "masking an unknown bounds it" (num 0 255)
    (Absval.alu And Absval.Top (num 255 255));
  Alcotest.check absv "constant folding" (num 3 3)
    (Absval.alu Div (num 13 13) (num 4 4))

let test_absval_refine () =
  (match Absval.refine Lt Absval.(Num top_itv) (num 10 10) with
  | Ok (Some (Absval.Num i, _)) ->
      Alcotest.(check int) "lt tightens the upper bound" 9 i.Absval.hi
  | _ -> Alcotest.fail "expected a refinement");
  (match Absval.refine Ge (num 0 100) (num 10 10) with
  | Ok (Some (Absval.Num i, _)) ->
      Alcotest.(check int) "ge tightens the lower bound" 10 i.Absval.lo
  | _ -> Alcotest.fail "expected a refinement");
  (match Absval.refine Lt (num 5 5) (num 3 3) with
  | Error `Infeasible -> ()
  | Ok _ -> Alcotest.fail "5 < 3 should be infeasible");
  match Absval.refine Lt (seg 0 0) (num 3 3) with
  | Ok None -> ()
  | _ -> Alcotest.fail "mixed kinds must not refine (unknown base)"

(* -------------------------------- Cfg --------------------------------- *)

(* The crypt-shaped transform loop used throughout: r1 = source pointer,
   r2 = destination pointer, r3 = word count, all established at entry. *)
let crypt_prog =
  Insn.
    [|
      Li (5, 0);
      Br (Ge, 5, 3, 9);
      Alu (Add, 6, 1, 5);
      Ld (7, 6, 0);
      Alui (Xor, 7, 7, 0x55);
      Alu (Add, 8, 2, 5);
      St (7, 8, 0);
      Alui (Add, 5, 5, 1);
      Jmp 1;
      Halt;
    |]

let crypt_entry =
  [
    (1, Verify.seg_window ());
    (2, Verify.seg_window ~off:64 ());
    (3, Verify.arg_at_most 64);
  ]

let test_cfg_blocks () =
  let cfg = Cfg.build crypt_prog in
  let blocks = Cfg.blocks cfg in
  Alcotest.(check int) "four blocks" 4 (Array.length blocks);
  Alcotest.(check int) "entry starts at 0" 0 (Cfg.entry cfg).Cfg.first;
  let body = Cfg.block_at cfg 5 in
  Alcotest.(check int) "loop body starts after the branch" 2 body.Cfg.first;
  Alcotest.(check int) "loop body ends at the back jump" 8 body.Cfg.last;
  Alcotest.(check bool) "everything reachable" true
    (Array.for_all Fun.id (Cfg.reachable cfg));
  Alcotest.(check bool) "well-terminated loop" false (Cfg.falls_off_end cfg)

let test_cfg_falls_off_end () =
  Alcotest.(check bool) "open end detected" true
    (Cfg.falls_off_end (Cfg.build [| Insn.Li (0, 1) |]));
  Alcotest.(check bool) "halt closes the program" false
    (Cfg.falls_off_end (Cfg.build [| Insn.Halt |]));
  Alcotest.(check bool) "callr is computed flow" true
    (Cfg.has_indirect_call [| Insn.Callr 1; Insn.Ret |])

(* ---------------------- access classification ------------------------- *)

let test_crypt_loop_proved () =
  (* the paper's worst SFI case: per-word load + store in a loop. The
     interval analysis (widening at the loop head, branch refinement on the
     exit test) proves both accesses for every conforming input. *)
  let report = analyse ~entry:crypt_entry ~words:128 crypt_prog in
  Alcotest.(check bool) "accepted" true (Report.ok report);
  Alcotest.(check bool) "not degraded" false report.Report.degraded;
  Alcotest.(check int) "both accesses proved" 2 (Report.safe_accesses report);
  Alcotest.(check int) "out of two" 2 (Report.total_accesses report)

let test_oob_stack_rejected () =
  (* sp+3 points above the initial stack pointer: outside the segment on
     every execution *)
  let prog =
    Insn.[| Alui (Add, 5, Insn.sp, 3); Ld (0, 5, 0); Halt |]
  in
  let report = analyse ~words:64 prog in
  Alcotest.(check bool) "rejected" false (Report.ok report);
  (match report.Report.classes.(1) with
  | Report.Access Report.Access_oob -> ()
  | _ -> Alcotest.fail "load not classified provably out of bounds");
  Alcotest.(check bool) "per-instruction diagnostic" true
    (diag_at Report.Error report 1 "provably outside the graft segment")

let test_oob_negative_offset_rejected () =
  let prog = Insn.[| Ld (0, 4, -5); Halt |] in
  let report =
    analyse ~entry:[ (4, Verify.seg_window ()) ] ~words:16 prog
  in
  Alcotest.(check bool) "rejected" false (Report.ok report);
  match report.Report.classes.(0) with
  | Report.Access Report.Access_oob -> ()
  | _ -> Alcotest.fail "below-segment load not flagged"

let test_unknown_address_needs_sandbox () =
  let prog = Insn.[| Ld (0, 1, 0); Halt |] in
  let report = analyse ~words:64 prog in
  Alcotest.(check bool) "accepted" true (Report.ok report);
  match report.Report.classes.(0) with
  | Report.Access Report.Access_sandbox -> ()
  | _ -> Alcotest.fail "unprovable access must keep its sandbox"

(* ------------------------ call classification ------------------------- *)

let callable id = id = 7

let test_kcallr_proved_callable () =
  let prog = Insn.[| Li (5, 7); Kcallr 5; Halt |] in
  let report = analyse ~callable ~words:4 prog in
  Alcotest.(check bool) "accepted" true (Report.ok report);
  Alcotest.(check int) "checkcall elidable" 1 (Report.safe_calls report);
  match report.Report.classes.(1) with
  | Report.Icall (Report.Call_safe 7) -> ()
  | _ -> Alcotest.fail "constant callable id not proved"

let test_kcallr_unknown_id_rejected () =
  let prog = Insn.[| Li (5, 99); Kcallr 5; Halt |] in
  let report = analyse ~callable ~words:4 prog in
  Alcotest.(check bool) "rejected" false (Report.ok report);
  (match report.Report.classes.(1) with
  | Report.Icall (Report.Call_bad 99) -> ()
  | _ -> Alcotest.fail "bad constant id not classified Call_bad");
  Alcotest.(check bool) "per-instruction diagnostic" true
    (diag_at Report.Error report 1 "provably not graft-callable")

let test_kcallr_without_callable_set () =
  (* no offline callable set: a constant id is still only checkable at
     run time *)
  let prog = Insn.[| Li (5, 7); Kcallr 5; Halt |] in
  let report = analyse ~words:4 prog in
  Alcotest.(check bool) "accepted" true (Report.ok report);
  match report.Report.classes.(1) with
  | Report.Icall Report.Call_check -> ()
  | _ -> Alcotest.fail "expected a conservative Call_check"

let test_direct_kcall_checked () =
  let prog = Insn.[| Kcall 99; Halt |] in
  let report = analyse ~callable ~words:4 prog in
  Alcotest.(check bool) "rejected" false (Report.ok report);
  Alcotest.(check bool) "named in the diagnostic" true
    (has_diag Report.Error report "id 99 is not graft-callable")

(* ------------------------------- lints -------------------------------- *)

let test_lint_unreachable () =
  let prog = Insn.[| Jmp 2; Li (0, 1); Halt |] in
  let report = analyse ~words:4 prog in
  Alcotest.(check bool) "lints are not errors" true (Report.ok report);
  Alcotest.(check bool) "warned" true
    (has_diag Report.Warning report "unreachable");
  match report.Report.classes.(1) with
  | Report.Unreachable -> ()
  | _ -> Alcotest.fail "dead instruction not classified unreachable"

let test_lint_fall_off_end () =
  let report = analyse ~words:4 [| Insn.Li (0, 1) |] in
  Alcotest.(check bool) "hard error" false (Report.ok report);
  Alcotest.(check bool) "explains the fall-through" true
    (has_diag Report.Error report "fall through past the end")

let test_lint_uninitialised_read () =
  let report = analyse ~words:4 Insn.[| Mov (0, 7); Halt |] in
  Alcotest.(check bool) "warning only" true (Report.ok report);
  Alcotest.(check bool) "names the register" true
    (has_diag Report.Warning report "register r7 read before initialisation")

let test_lint_reserved_register () =
  let prog = Insn.[| Mov (Insn.scratch, 1); Halt |] in
  let report = analyse ~words:4 prog in
  Alcotest.(check bool) "rejected at source stage" false (Report.ok report);
  Alcotest.(check bool) "names the reservation" true
    (has_diag Report.Error report "reserved sandbox register");
  let rewritten = analyse ~stage:`Rewritten ~words:4 prog in
  Alcotest.(check bool) "legitimate in rewriter output" true
    (Report.ok rewritten)

let test_lint_division_by_zero_is_survivable () =
  (* a provable run-time fault is undone by the transaction machinery, so
     it warns instead of blocking the graft (unlike memory safety) *)
  let prog = Insn.[| Li (6, 0); Alu (Div, 0, 1, 6); Halt |] in
  let report = analyse ~words:4 prog in
  Alcotest.(check bool) "not a link-time rejection" true (Report.ok report);
  Alcotest.(check bool) "warned" true
    (has_diag Report.Warning report "provably-zero divisor")

let test_lint_stack_imbalance () =
  let report = analyse ~words:8 Insn.[| Push 1; Ret |] in
  Alcotest.(check bool) "warning only" true (Report.ok report);
  Alcotest.(check bool) "warned" true
    (has_diag Report.Warning report "stack-depth imbalance")

let test_callr_degrades () =
  let prog = Insn.[| Callr 1; Ld (0, 1, 0); Ret |] in
  let report = analyse ~entry:[ (1, Verify.seg_window ()) ] ~words:64 prog in
  Alcotest.(check bool) "still loadable" true (Report.ok report);
  Alcotest.(check bool) "degraded" true report.Report.degraded;
  Alcotest.(check bool) "warned" true
    (has_diag Report.Warning report "degraded to run-time checks");
  match report.Report.classes.(1) with
  | Report.Access Report.Access_sandbox -> ()
  | _ -> Alcotest.fail "degraded analysis must stay conservative"

let test_call_havocs_fall_through () =
  (* the graft IR has no callee-save convention: entry facts must not
     survive an intra-graft call *)
  let prog = Insn.[| Call 3; Ld (0, 1, 0); Halt; Ret |] in
  let report = analyse ~entry:[ (1, Verify.seg_window ()) ] ~words:64 prog in
  Alcotest.(check bool) "accepted" true (Report.ok report);
  match report.Report.classes.(1) with
  | Report.Access Report.Access_sandbox -> ()
  | _ -> Alcotest.fail "post-call access must be re-checked at run time"

let test_malformed_programs () =
  let empty = analyse ~words:4 [||] in
  Alcotest.(check bool) "empty rejected" false (Report.ok empty);
  let wild = analyse ~words:4 [| Insn.Jmp 7 |] in
  Alcotest.(check bool) "wild target rejected" false (Report.ok wild);
  Alcotest.(check bool) "wild target degrades" true wild.Report.degraded

(* -------------------- rewriter verified fast path ---------------------- *)

let test_process_elides_proven_sandboxes () =
  let verifier = Verify.config ~entry:crypt_entry ~words:128 () in
  let safe = process_exn crypt_prog in
  let verified = process_exn ~verifier crypt_prog in
  Alcotest.(check int) "safe path sandboxes both accesses" 2
    (count_sandbox safe);
  Alcotest.(check int) "verified path elides every sandbox" 0
    (count_sandbox verified);
  Alcotest.(check int) "verified output is the input"
    (Array.length crypt_prog) (Array.length verified)

let test_process_elides_proven_checkcall () =
  let prog = Insn.[| Li (5, 7); Kcallr 5; Halt |] in
  let plain = process_exn prog in
  Alcotest.(check int) "checkcall inserted by default" 1
    (count_checkcall plain);
  let verifier = Verify.config ~callable ~words:4 () in
  let verified = process_exn ~verifier prog in
  Alcotest.(check int) "proven id keeps the raw kcallr" 0
    (count_checkcall verified)

let test_process_rejects_oob () =
  let prog =
    Insn.[| Alui (Add, 5, Insn.sp, 3); Ld (0, 5, 0); Halt |]
  in
  let verifier = Verify.config ~words:64 () in
  match Rewrite.process ~verifier prog with
  | Error e ->
      Alcotest.(check bool) "diagnostic survives" true
        (contains e "provably outside the graft segment")
  | Ok _ -> Alcotest.fail "provably out-of-bounds graft was rewritten"

(* ------------------------- link-time rejection ------------------------- *)

let test_linker_rejects_oob_graft () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let obj =
    {
      Asm.code =
        Insn.[| Alui (Add, 5, Insn.sp, 3); Ld (0, 5, 0); Halt |];
      relocs = [];
    }
  in
  (* seal_unsafe skips the rewriter, so the image reaches the linker with
     its provably-wild access intact: the linker's own verifier pass must
     catch it *)
  let image = Kernel.seal_unsafe kernel obj in
  match Linker.load kernel ~words:64 image with
  | Error msg ->
      Alcotest.(check bool) "labelled" true
        (contains msg "static verification failed");
      Alcotest.(check bool) "diagnosed" true
        (contains msg "provably outside the graft segment")
  | Ok _ -> Alcotest.fail "linker loaded a provably out-of-bounds graft"

let test_linker_rejects_unknown_kcallr_id () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let obj =
    { Asm.code = Insn.[| Li (5, 999_999); Kcallr 5; Halt |]; relocs = [] }
  in
  let image = Kernel.seal_unsafe kernel obj in
  (match Linker.load kernel ~words:64 image with
  | Error msg ->
      Alcotest.(check bool) "diagnosed" true
        (contains msg "provably not graft-callable")
  | Ok _ -> Alcotest.fail "linker loaded a provably bad indirect call");
  (* and sealing with verification refuses it even earlier, using the
     kernel's registry as the callable set *)
  match Kernel.seal ~verify:(Verify.config ~words:64 ()) kernel obj with
  | Error msg ->
      Alcotest.(check bool) "seal-time diagnosis" true
        (contains msg "provably not graft-callable")
  | Ok _ -> Alcotest.fail "seal accepted a provably bad indirect call"

let test_linker_accepts_clean_graft () =
  let kernel = Kernel.create ~mem_words:(1 lsl 12) () in
  let obj = { Asm.code = Insn.[| Li (0, 1); Halt |]; relocs = [] } in
  let image = Kernel.seal_unsafe kernel obj in
  match Linker.load kernel ~words:64 image with
  | Ok loaded -> Linker.unload kernel loaded
  | Error e -> Alcotest.fail e

(* --------------------- differential: elision is sound ------------------ *)

(* Run a rewritten graft on a fresh machine with adversarial memory
   contents and conforming entry registers; return everything observable. *)
let exec code ~len =
  let mem = Mem.create 1024 in
  let seg = Mem.segment ~base:512 ~size:128 in
  for k = 0 to 63 do
    Mem.store mem (512 + k)
      (if k mod 7 = 0 then min_int + k else (k * 2654435761) lxor (k lsl 9))
  done;
  let cpu = Cpu.make ~mem ~seg () in
  Cpu.set_reg cpu 1 512;
  Cpu.set_reg cpu 2 (512 + 64);
  Cpu.set_reg cpu 3 len;
  let outcome = Cpu.run Cpu.env_trusted cpu code in
  (outcome, Array.init (Mem.size mem) (Mem.load mem), Cpu.cycles cpu)

let test_differential_crypt () =
  let verifier = Verify.config ~entry:crypt_entry ~words:128 () in
  let safe = process_exn crypt_prog in
  let verified = process_exn ~verifier crypt_prog in
  List.iter
    (fun len ->
      let o_s, m_s, c_s = exec safe ~len in
      let o_v, m_v, c_v = exec verified ~len in
      Alcotest.(check bool)
        (Printf.sprintf "len %d: same outcome" len)
        true
        (o_s = Cpu.Halted && o_v = Cpu.Halted);
      Alcotest.(check (array int))
        (Printf.sprintf "len %d: identical memory" len)
        m_s m_v;
      Alcotest.(check bool)
        (Printf.sprintf "len %d: verified never slower" len)
        true (c_v <= c_s);
      if len > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "len %d: verified strictly cheaper" len)
          true (c_v < c_s))
    [ 0; 1; 63; 64 ]

let test_differential_wild_store_still_confined () =
  (* an unprovable store keeps its sandbox on the verified path, so a wild
     address is confined identically under both rewrites *)
  let wild = Insn.[| Li (6, 987_654); St (1, 6, 0); Halt |] in
  let verifier = Verify.config ~words:128 () in
  let safe = process_exn wild in
  let verified = process_exn ~verifier wild in
  Alcotest.(check int) "sandbox kept" 1 (count_sandbox verified);
  let o_s, m_s, _ = exec safe ~len:0 in
  let o_v, m_v, _ = exec verified ~len:0 in
  Alcotest.(check bool) "both halt" true (o_s = Cpu.Halted && o_v = o_s);
  Alcotest.(check (array int)) "identical memory" m_s m_v

(* Property: for random straight-line programs over conforming pointers,
   the verified rewrite and the always-sandbox rewrite are observationally
   identical. Offsets stay within the proven window so the verifier may
   elide, and the elision must not show. *)
let prop_differential_straight_line =
  let open QCheck2 in
  Test.make ~name:"verified elision is observationally sound" ~count:150
    Gen.(list_size (int_range 1 12) (pair (int_range 0 63) (int_range 0 1)))
    (fun ops ->
      let body =
        ops
        |> List.concat_map (fun (off, kind) ->
               if kind = 0 then [ Insn.Ld (6, 1, off) ]
               else [ Insn.Alui (Add, 7, 6, 1); Insn.St (7, 1, off) ])
      in
      let prog = Array.of_list (body @ [ Insn.Halt ]) in
      let verifier =
        Verify.config ~entry:[ (1, Verify.seg_window ()) ] ~words:128 ()
      in
      match (Rewrite.process prog, Rewrite.process ~verifier prog) with
      | Ok safe, Ok verified ->
          let o_s, m_s, c_s = exec safe ~len:0 in
          let o_v, m_v, c_v = exec verified ~len:0 in
          o_s = Cpu.Halted && o_v = Cpu.Halted && m_s = m_v && c_v <= c_s
      | _ -> false)

let suite =
  [
    ( "verify",
      [
        Alcotest.test_case "absval join and widen" `Quick
          test_absval_join_widen;
        Alcotest.test_case "absval alu transfer" `Quick test_absval_alu;
        Alcotest.test_case "absval branch refinement" `Quick
          test_absval_refine;
        Alcotest.test_case "cfg blocks of the transform loop" `Quick
          test_cfg_blocks;
        Alcotest.test_case "cfg fall-off-end and callr" `Quick
          test_cfg_falls_off_end;
        Alcotest.test_case "crypt loop fully proved" `Quick
          test_crypt_loop_proved;
        Alcotest.test_case "provably OOB stack access rejected" `Quick
          test_oob_stack_rejected;
        Alcotest.test_case "provably below-segment access rejected" `Quick
          test_oob_negative_offset_rejected;
        Alcotest.test_case "unknown address keeps its sandbox" `Quick
          test_unknown_address_needs_sandbox;
        Alcotest.test_case "constant callable id proved" `Quick
          test_kcallr_proved_callable;
        Alcotest.test_case "unknown kcallr id rejected" `Quick
          test_kcallr_unknown_id_rejected;
        Alcotest.test_case "no callable set: conservative" `Quick
          test_kcallr_without_callable_set;
        Alcotest.test_case "direct kcall id checked" `Quick
          test_direct_kcall_checked;
        Alcotest.test_case "lint: unreachable code" `Quick
          test_lint_unreachable;
        Alcotest.test_case "lint: fall off the end" `Quick
          test_lint_fall_off_end;
        Alcotest.test_case "lint: uninitialised read" `Quick
          test_lint_uninitialised_read;
        Alcotest.test_case "lint: reserved register by stage" `Quick
          test_lint_reserved_register;
        Alcotest.test_case "lint: division by zero survivable" `Quick
          test_lint_division_by_zero_is_survivable;
        Alcotest.test_case "lint: stack imbalance" `Quick
          test_lint_stack_imbalance;
        Alcotest.test_case "callr degrades to run-time checks" `Quick
          test_callr_degrades;
        Alcotest.test_case "intra-graft call havocs state" `Quick
          test_call_havocs_fall_through;
        Alcotest.test_case "malformed programs rejected" `Quick
          test_malformed_programs;
        Alcotest.test_case "rewriter elides proven sandboxes" `Quick
          test_process_elides_proven_sandboxes;
        Alcotest.test_case "rewriter elides proven checkcall" `Quick
          test_process_elides_proven_checkcall;
        Alcotest.test_case "rewriter rejects provable OOB" `Quick
          test_process_rejects_oob;
        Alcotest.test_case "linker rejects OOB graft" `Quick
          test_linker_rejects_oob_graft;
        Alcotest.test_case "linker rejects unknown kcallr id" `Quick
          test_linker_rejects_unknown_kcallr_id;
        Alcotest.test_case "linker accepts a clean graft" `Quick
          test_linker_accepts_clean_graft;
        Alcotest.test_case "differential: crypt safe vs verified" `Quick
          test_differential_crypt;
        Alcotest.test_case "differential: wild store confined" `Quick
          test_differential_wild_store_still_confined;
        QCheck_alcotest.to_alcotest prop_differential_straight_line;
      ] );
  ]
