(* Tests for the MiSFIT SFI rewriter. *)

module Insn = Vino_vm.Insn
module Mem = Vino_vm.Mem
module Cpu = Vino_vm.Cpu
module Asm = Vino_vm.Asm
module Rewrite = Vino_misfit.Rewrite

let machine () =
  let mem = Mem.create 1024 in
  let seg = Mem.segment ~base:512 ~size:256 in
  (mem, seg)

let process_exn code =
  match Rewrite.process code with
  | Ok rewritten -> rewritten
  | Error e -> Alcotest.fail e

let test_reserved_register_rejected () =
  let code = [| Insn.Mov (Insn.scratch, 0); Insn.Halt |] in
  match Rewrite.process code with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "code using the sandbox register was accepted"

let test_sandbox_inserted_before_loads_and_stores () =
  let code = [| Insn.Ld (0, 1, 4); Insn.St (2, 3, 0); Insn.Halt |] in
  let rewritten = Rewrite.sandbox_memory code in
  let sandboxes =
    Array.to_list rewritten
    |> List.filter (function Insn.Sandbox _ -> true | _ -> false)
  in
  Alcotest.(check int) "one sandbox per access" 2 (List.length sandboxes);
  (* Every rewritten access goes through the scratch register. *)
  Array.iter
    (function
      | Insn.Ld (_, b, off) | Insn.St (_, b, off) ->
          Alcotest.(check int) "base is scratch" Insn.scratch b;
          Alcotest.(check int) "offset folded" 0 off
      | _ -> ())
    rewritten

let test_branch_targets_remapped () =
  (* A loop over a store: semantics must be identical after rewriting, with
     branch targets pointing at the expanded instruction boundaries. *)
  let mem, seg = machine () in
  let items : Asm.item list =
    [
      Li (Asm.r1, seg.Mem.base);
      Li (Asm.r2, 0);
      Li (Asm.r3, 8);
      Label "loop";
      Br (Insn.Ge, Asm.r2, Asm.r3, "out");
      Alu (Insn.Add, Asm.r4, Asm.r1, Asm.r2);
      St (Asm.r2, Asm.r4, 0);
      Alui (Insn.Add, Asm.r2, Asm.r2, 1);
      Jmp "loop";
      Label "out";
      Halt;
    ]
  in
  let obj = Asm.assemble_exn items in
  let rewritten = process_exn obj.code in
  let cpu = Cpu.make ~mem ~seg () in
  let o = Cpu.run Cpu.env_trusted cpu rewritten in
  Alcotest.(check bool) "halted" true (o = Cpu.Halted);
  for k = 0 to 7 do
    Alcotest.(check int) "store landed" k (Mem.load mem (seg.Mem.base + k))
  done

let test_wild_store_confined () =
  (* The same wild store that faults un-rewritten is silently confined to the
     graft segment after rewriting — kernel memory is untouched. *)
  let mem, seg = machine () in
  let items : Asm.item list =
    [ Li (Asm.r1, 3); Li (Asm.r2, 0xBEEF); St (Asm.r2, Asm.r1, 0); Halt ]
  in
  let obj = Asm.assemble_exn items in
  let rewritten = process_exn obj.code in
  let cpu = Cpu.make ~mem ~seg () in
  let o = Cpu.run Cpu.env_trusted cpu rewritten in
  Alcotest.(check bool) "halted, not faulted" true (o = Cpu.Halted);
  Alcotest.(check int) "kernel word 3 untouched" 0 (Mem.load mem 3);
  Alcotest.(check int) "store landed in segment" 0xBEEF
    (Mem.load mem (Mem.sandbox seg 3))

let test_push_pop_lowered () =
  let code = [| Insn.Push 1; Insn.Pop 2; Insn.Halt |] in
  let lowered = Rewrite.lower_stack_ops code in
  Alcotest.(check bool) "no push/pop remain" true
    (Array.for_all
       (function Insn.Push _ | Insn.Pop _ -> false | _ -> true)
       lowered);
  (* And behaviour is preserved through the full pipeline. *)
  let mem, seg = machine () in
  let obj =
    Asm.assemble_exn
      [ Li (Asm.r1, 77); Push Asm.r1; Pop (Asm.r0); Halt ]
  in
  let rewritten = process_exn obj.code in
  let cpu = Cpu.make ~mem ~seg () in
  ignore mem;
  let o = Cpu.run Cpu.env_trusted cpu rewritten in
  Alcotest.(check bool) "halted" true (o = Cpu.Halted);
  Alcotest.(check int) "value through stack" 77 (Cpu.reg cpu 0)

let test_indirect_kernel_calls_guarded () =
  let code = [| Insn.Li (1, 9); Insn.Kcallr 1; Insn.Halt |] in
  let rewritten = Rewrite.guard_indirect_calls code in
  (match rewritten with
  | [| Insn.Li (1, 9); Insn.Checkcall 1; Insn.Kcallr 1; Insn.Halt |] -> ()
  | _ -> Alcotest.fail "checkcall not inserted before kcallr");
  (* Runtime: disallowed id now faults before reaching the kernel. *)
  let mem, seg = machine () in
  let cpu = Cpu.make ~mem ~seg () in
  let env = { Cpu.env_trusted with call_ok = (fun _ -> false) } in
  match Cpu.run env cpu rewritten with
  | Cpu.Faulted (Cpu.Bad_call_target 9) -> ()
  | o -> Alcotest.failf "expected guard fault, got %a" Cpu.pp_outcome o

let test_expansion_cost_bounds () =
  (* MiSFIT charges 2-5 cycles per load/store (paper §3.3): our expansion
     adds at most 3 instructions (mov/addi + sandbox) per access. *)
  let code =
    [| Insn.Ld (0, 1, 0); Insn.St (0, 1, 4); Insn.Alu (Add, 0, 0, 0);
       Insn.Halt |]
  in
  let rewritten = Rewrite.sandbox_memory code in
  let growth = Array.length rewritten - Array.length code in
  Alcotest.(check bool) "growth within 2-3 insns per access" true
    (growth >= 4 && growth <= 6)

let test_redundant_sandbox_elimination () =
  (* two accesses to the same base+offset in a straight line need one
     sandbox; a write to the base in between forces a second *)
  let same_addr =
    [| Insn.Ld (3, 1, 4); Insn.St (5, 1, 4); Insn.Halt |]
  in
  Alcotest.(check int) "one sandbox elided" 1
    (Rewrite.eliminated_sandboxes same_addr);
  let clobbered =
    [| Insn.Ld (3, 1, 4); Insn.Alui (Insn.Add, 1, 1, 1); Insn.St (5, 1, 4);
       Insn.Halt |]
  in
  Alcotest.(check int) "clobbered base re-sandboxed" 0
    (Rewrite.eliminated_sandboxes clobbered);
  (* a branch target between the accesses also kills the reuse *)
  let target_between =
    [| Insn.Ld (3, 1, 4); Insn.St (5, 1, 4); Insn.Jmp 1 |]
  in
  Alcotest.(check int) "branch target resets state" 0
    (Rewrite.eliminated_sandboxes target_between)

let count_sandbox code =
  Array.fold_left
    (fun acc i -> match i with Insn.Sandbox _ -> acc + 1 | _ -> acc)
    0 code

let test_elimination_count_agrees_with_output () =
  (* eliminated_sandboxes must agree with the instructions actually saved:
     each elided sandbox removes its 2-instruction address sequence *)
  let progs =
    [
      [| Insn.Ld (3, 1, 4); Insn.St (5, 1, 4); Insn.Halt |];
      [| Insn.Ld (3, 1, 4); Insn.Alui (Insn.Add, 1, 1, 1);
         Insn.St (5, 1, 4); Insn.Halt |];
      [| Insn.St (2, 1, 0); Insn.St (3, 1, 0); Insn.St (4, 1, 0);
         Insn.Ld (5, 1, 8); Insn.Halt |];
    ]
  in
  List.iter
    (fun prog ->
      let plain = Rewrite.sandbox_memory prog in
      let opt = Rewrite.sandbox_memory ~optimize:true prog in
      let n = Rewrite.eliminated_sandboxes prog in
      Alcotest.(check int) "sandbox count difference" n
        (count_sandbox plain - count_sandbox opt);
      Alcotest.(check int) "instruction count difference" (2 * n)
        (Array.length plain - Array.length opt))
    progs

let test_optimize_load_clobbering_its_base () =
  (* the load's destination is its own base register: the cached sandboxed
     address is stale afterwards, so the next access must re-sandbox *)
  let code =
    [| Insn.Li (1, 4); Insn.Li (9, 55); Insn.Ld (1, 1, 4);
       Insn.St (9, 1, 4); Insn.Halt |]
  in
  Alcotest.(check int) "no elision across the clobber" 0
    (Rewrite.eliminated_sandboxes code);
  let mem, seg = machine () in
  (* the load reads 100, which becomes the store's base: 100+4 *)
  Mem.store mem (Mem.sandbox seg 8) 100;
  match Rewrite.process ~optimize:true code with
  | Error e -> Alcotest.fail e
  | Ok rewritten -> (
      let cpu = Cpu.make ~mem ~seg () in
      match Cpu.run Cpu.env_trusted cpu rewritten with
      | Cpu.Halted ->
          Alcotest.(check int) "store used the reloaded base" 55
            (Mem.load mem (Mem.sandbox seg 104));
          Alcotest.(check int) "old address not overwritten" 100
            (Mem.load mem (Mem.sandbox seg 8))
      | o -> Alcotest.failf "unexpected %a" Cpu.pp_outcome o)

let test_optimize_branch_target_between_accesses () =
  (* control re-enters between two same-address accesses with a different
     base register: the second access must re-sandbox, or the loop's second
     pass would write through the first pass's address *)
  let code =
    [|
      Insn.Li (9, 1);                   (* pass counter *)
      Insn.Li (1, 4);                   (* base *)
      Insn.Ld (3, 1, 4);
      Insn.Alui (Insn.Add, 7, 9, 10);   (* branch target: r7 = passes+10 *)
      Insn.St (7, 1, 4);
      Insn.Li (1, 100);                 (* different base for pass 2 *)
      Insn.Alui (Insn.Sub, 9, 9, 1);
      Insn.Br (Insn.Ge, 9, 8, 3);       (* r8 is zero *)
      Insn.Halt;
    |]
  in
  let mem, seg = machine () in
  match Rewrite.process ~optimize:true code with
  | Error e -> Alcotest.fail e
  | Ok rewritten -> (
      let cpu = Cpu.make ~mem ~seg () in
      match Cpu.run Cpu.env_trusted cpu rewritten with
      | Cpu.Halted ->
          Alcotest.(check int) "pass 1 store at base 4" 11
            (Mem.load mem (Mem.sandbox seg 8));
          Alcotest.(check int) "pass 2 store at base 100" 10
            (Mem.load mem (Mem.sandbox seg 104))
      | o -> Alcotest.failf "unexpected %a" Cpu.pp_outcome o)

let test_sandbox_memory_safe_predicate () =
  (* accesses the verifier proved keep their raw instruction *)
  let code = [| Insn.Ld (0, 1, 0); Insn.St (0, 1, 0); Insn.Halt |] in
  let rewritten = Rewrite.sandbox_memory ~safe:(fun k -> k = 0) code in
  (match rewritten.(0) with
  | Insn.Ld (0, 1, 0) -> ()
  | _ -> Alcotest.fail "proven access lost its raw form");
  Alcotest.(check int) "only the unproven access sandboxed" 1
    (count_sandbox rewritten)

let test_optimized_rewrite_still_confines () =
  let mem, seg = machine () in
  let code =
    [| Insn.Li (1, 99_999); Insn.St (1, 1, 0); Insn.Ld (2, 1, 0); Insn.Halt |]
  in
  match Rewrite.process ~optimize:true code with
  | Error e -> Alcotest.fail e
  | Ok rewritten -> (
      let cpu = Cpu.make ~mem ~seg () in
      match Cpu.run Cpu.env_trusted cpu rewritten with
      | Cpu.Halted ->
          Alcotest.(check int) "kernel memory untouched" 0 (Mem.load mem 0);
          Alcotest.(check int) "load saw the confined store" 99_999
            (Cpu.reg cpu 2)
      | o -> Alcotest.failf "unexpected %a" Cpu.pp_outcome o)

(* Property: for random straight-line store programs, rewritten execution
   never writes outside the graft segment. *)
let prop_rewritten_stores_confined =
  let open QCheck2 in
  Test.make ~name:"rewritten stores always land in segment" ~count:200
    Gen.(list_size (int_range 1 20) (pair (int_range (-2000) 2000) small_nat))
    (fun stores ->
      let mem = Mem.create 2048 in
      let seg = Mem.segment ~base:1024 ~size:512 in
      let code =
        stores
        |> List.concat_map (fun (addr, v) ->
               [ Insn.Li (1, addr); Insn.Li (2, v); Insn.St (2, 1, 0) ])
        |> fun body -> Array.of_list (body @ [ Insn.Halt ])
      in
      match Rewrite.process code with
      | Error _ -> false
      | Ok rewritten -> (
          let cpu = Cpu.make ~mem ~seg () in
          match Cpu.run Cpu.env_trusted cpu rewritten with
          | Cpu.Halted ->
              (* nothing outside the segment may be nonzero *)
              let clean = ref true in
              for a = 0 to Mem.size mem - 1 do
                if (not (Mem.in_segment seg a)) && Mem.load mem a <> 0 then
                  clean := false
              done;
              !clean
          | _ -> false))

let suite =
  [
    ( "rewrite",
      [
        Alcotest.test_case "reserved register rejected" `Quick
          test_reserved_register_rejected;
        Alcotest.test_case "sandbox inserted before loads/stores" `Quick
          test_sandbox_inserted_before_loads_and_stores;
        Alcotest.test_case "branch targets remapped" `Quick
          test_branch_targets_remapped;
        Alcotest.test_case "wild store confined to segment" `Quick
          test_wild_store_confined;
        Alcotest.test_case "push/pop lowered then sandboxed" `Quick
          test_push_pop_lowered;
        Alcotest.test_case "indirect kernel calls guarded" `Quick
          test_indirect_kernel_calls_guarded;
        Alcotest.test_case "expansion cost within paper bounds" `Quick
          test_expansion_cost_bounds;
        Alcotest.test_case "redundant sandboxes eliminated" `Quick
          test_redundant_sandbox_elimination;
        Alcotest.test_case "elimination count matches output" `Quick
          test_elimination_count_agrees_with_output;
        Alcotest.test_case "load clobbering its base re-sandboxes" `Quick
          test_optimize_load_clobbering_its_base;
        Alcotest.test_case "branch target between accesses" `Quick
          test_optimize_branch_target_between_accesses;
        Alcotest.test_case "safe predicate keeps raw accesses" `Quick
          test_sandbox_memory_safe_predicate;
        Alcotest.test_case "optimised rewrite still confines" `Quick
          test_optimized_rewrite_still_confines;
        QCheck_alcotest.to_alcotest prop_rewritten_stores_confined;
      ] );
  ]
