(* Shape checks on the reproduced experiments: the orderings and rough
   ratios the paper reports must hold in the simulator, for every table.
   (Exact values are in EXPERIMENTS.md; these tests pin the *shape*.) *)

open Vino_measure

let iterations = 40

let elapsed_of scenario_measure =
  List.map (fun p -> (p, scenario_measure ?iterations:(Some iterations) p)) Path.all

let check_monotone name elapsed =
  (* Base <= Vino <= Null <= Unsafe <= Safe (abort may sit either side of
     safe in the paper; we require it at least above unsafe) *)
  let v p = List.assoc p elapsed in
  Alcotest.(check bool) (name ^ ": base <= vino") true
    (v Path.Base <= v Path.Vino +. 0.01);
  Alcotest.(check bool) (name ^ ": vino < null") true
    (v Path.Vino < v Path.Null);
  Alcotest.(check bool) (name ^ ": null < unsafe") true
    (v Path.Null < v Path.Unsafe);
  Alcotest.(check bool) (name ^ ": unsafe <= safe") true
    (v Path.Unsafe <= v Path.Safe);
  (* the verified path elides a subset of the safe path's checks: it can
     never cost more than safe, nor less than the unrewritten graft *)
  Alcotest.(check bool) (name ^ ": unsafe <= verified") true
    (v Path.Unsafe <= v Path.Verified +. 0.01);
  Alcotest.(check bool) (name ^ ": verified <= safe") true
    (v Path.Verified <= v Path.Safe +. 0.01);
  Alcotest.(check bool) (name ^ ": abort > unsafe") true
    (v Path.Abort > v Path.Unsafe)

let within_factor name ~factor paper measured =
  Alcotest.(check bool)
    (Printf.sprintf "%s: measured %.1f within %gx of paper %.1f" name
       measured factor paper)
    true
    (measured >= paper /. factor && measured <= paper *. factor)

let check_against_paper name paper_elapsed elapsed ~factor =
  List.iter
    (fun (p, paper) ->
      within_factor (name ^ "/" ^ Path.name p) ~factor paper
        (List.assoc p elapsed))
    paper_elapsed

let test_table3_shape () =
  let e = elapsed_of Sc_readahead.measure in
  check_monotone "readahead" e;
  check_against_paper "readahead" Sc_readahead.paper_elapsed e ~factor:1.6;
  (* the txn begin+commit block dominates the null path *)
  let v p = List.assoc p e in
  Alcotest.(check bool) "txn cost ~64us" true
    (let txn = v Path.Null -. v Path.Vino in
     txn > 55. && txn < 95.)

let test_table4_shape () =
  let e = elapsed_of Sc_evict.measure in
  check_monotone "evict" e;
  check_against_paper "evict" Sc_evict.paper_elapsed e ~factor:2.0;
  (* agreement is much cheaper than overrule (paper: 159 vs 316+39) *)
  let agreement = Sc_evict.measure_agreement ~iterations () in
  Alcotest.(check bool) "agreement < overrule" true
    (agreement < List.assoc Path.Safe e);
  Alcotest.(check bool) "agreement in the paper's ballpark" true
    (agreement > 100. && agreement < 260.)

let test_table5_shape () =
  let e = elapsed_of Sc_sched.measure in
  check_monotone "sched" e;
  check_against_paper "sched" Sc_sched.paper_elapsed e ~factor:1.5;
  (* the graft overhead is about twice the process-switch cost and a small
     fraction of a 10 ms timeslice *)
  let v p = List.assoc p e in
  Alcotest.(check bool) "safe ~2-4x base" true
    (v Path.Safe > 2. *. v Path.Base && v Path.Safe < 4. *. v Path.Base);
  Alcotest.(check bool) "~2% of a timeslice" true
    (v Path.Safe /. 10_000. < 0.04)

let test_table6_shape () =
  let e = elapsed_of Sc_crypt.measure in
  check_monotone "crypt" e;
  check_against_paper "crypt" Sc_crypt.paper_elapsed e ~factor:1.4;
  (* SFI near-doubles the graft function: worst case *)
  let v p = List.assoc p e in
  let graft_fn = v Path.Unsafe -. v Path.Null in
  let misfit = v Path.Safe -. v Path.Unsafe in
  Alcotest.(check bool) "misfit overhead 50-200% of graft fn" true
    (misfit > 0.5 *. graft_fn && misfit < 2. *. graft_fn)

let test_table7_shape () =
  let checks =
    [
      ("readahead", Sc_readahead.measure_abort ~iterations);
      ("evict", Sc_evict.measure_abort ~iterations);
      ("sched", Sc_sched.measure_abort ~iterations);
    ]
  in
  List.iter
    (fun (name, f) ->
      let null = f ~full:false () and full = f ~full:true () in
      Alcotest.(check bool) (name ^ ": null abort 30-40us") true
        (null > 30. && null < 42.);
      Alcotest.(check bool) (name ^ ": full abort above null") true
        (full > null);
      Alcotest.(check bool) (name ^ ": full within +40% (paper 0-40%)") true
        (full < 1.45 *. null))
    checks;
  (* encryption holds no locks: its aborts are equal (paper: 36/36) *)
  let cn = Sc_crypt.measure_abort ~iterations ~full:false () in
  let cf = Sc_crypt.measure_abort ~iterations ~full:true () in
  Alcotest.(check (float 2.)) "encryption null=full" cn cf

let test_abort_model () =
  let points = Abort_model.sweep_locks ~iterations () in
  let intercept, slope = Abort_model.fit points in
  Alcotest.(check bool) "intercept ~35us" true
    (intercept > 30. && intercept < 40.);
  Alcotest.(check bool) "slope ~10us/lock" true
    (slope > 8. && slope < 12.);
  (* undo cost raises aborts linearly too *)
  let u0 = Abort_model.abort_cost ~iterations ~locks:0 ~undo:0 () in
  let u16 = Abort_model.abort_cost ~iterations ~locks:0 ~undo:16 () in
  Alcotest.(check (float 2.)) "undo adds its replay cost" (u0 +. 16.) u16

let test_timeout_bounds () =
  let lo, hi = Abort_model.timeout_latency_bounds () in
  Alcotest.(check int) "low = one tick" Vino_sim.Tick.default_tick lo;
  Alcotest.(check int) "high = two ticks" (2 * Vino_sim.Tick.default_tick) hi

let test_lock_factor () =
  let conventional =
    Lock_factor.uncontended_cost ~iterations ~factored:false ()
  in
  let factored = Lock_factor.uncontended_cost ~iterations ~factored:true () in
  Alcotest.(check (float 0.05))
    "difference equals two 35-cycle indirections"
    (Lock_factor.indirection_cost_us ())
    (factored -. conventional);
  Alcotest.(check (list string))
    "reader-priority overtakes"
    [ "reader-1"; "reader-2"; "writer" ]
    (Lock_factor.contended_trace ~policy:Vino_txn.Lock_policy.reader_priority
       ());
  Alcotest.(check (list string))
    "fifo-fair queues"
    [ "reader-1"; "writer"; "reader-2" ]
    (Lock_factor.contended_trace
       ~policy:(Vino_txn.Lock_policy.factored Vino_txn.Lock_policy.fifo_fair)
       ())

let test_stats_match_paper_deviation_discipline () =
  (* the paper reports <2.5% standard deviations for long paths; our
     deterministic simulator should be far tighter on the safe path *)
  let s = Sc_crypt.stats ~iterations Path.Safe in
  let mean = Vino_sim.Stats.trimmed_mean s in
  let sd = Vino_sim.Stats.trimmed_stddev s in
  Alcotest.(check bool) "stddev under 2.5% of mean" true
    (sd < 0.025 *. mean)

let test_table_support () =
  let diffs =
    Table.diffs [ ("a", 10.); ("b", 25.); ("c", 27.5) ]
  in
  Alcotest.(check (list (pair string (float 0.001))))
    "successive differences"
    [ ("b", 15.); ("c", 2.5) ]
    diffs;
  let rendered =
    Format.asprintf "%a" (fun ppf () ->
        Table.render ppf ~title:"T" ~notes:"n"
          [ Table.elapsed ~paper:10. "row" 12.; Table.overhead "inc" 2. ])
      ()
  in
  Alcotest.(check bool) "ratio rendered" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains rendered "1.20" && contains rendered "T"
     && contains rendered "n")

let test_probe_timing_exact () =
  let kernel = Vino_core.Kernel.create ~mem_words:(1 lsl 12) () in
  let stats =
    Probe.samples kernel ~warmup:1 ~iterations:50 (fun _ ->
        Vino_sim.Engine.delay (Vino_vm.Costs.cycles_of_us 123.))
  in
  Alcotest.(check (float 0.01)) "mean equals the delay" 123.
    (Vino_sim.Stats.trimmed_mean stats);
  Alcotest.(check (float 0.001)) "deterministic: zero deviation" 0.
    (Vino_sim.Stats.trimmed_stddev stats)

let prop_parser_never_crashes =
  QCheck2.Test.make ~name:"parser never raises on garbage" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 120))
    (fun garbage ->
      match Vino_vm.Parse.parse garbage with
      | Ok _ | Error _ -> true)

let suite =
  [
    ( "measure",
      [
        Alcotest.test_case "Table 3 shape (readahead)" `Slow test_table3_shape;
        Alcotest.test_case "Table 4 shape (evict)" `Slow test_table4_shape;
        Alcotest.test_case "Table 5 shape (sched)" `Slow test_table5_shape;
        Alcotest.test_case "Table 6 shape (crypt)" `Slow test_table6_shape;
        Alcotest.test_case "Table 7 shape (aborts)" `Slow test_table7_shape;
        Alcotest.test_case "abort model 35+10L (§4.5)" `Slow test_abort_model;
        Alcotest.test_case "timeout latency bounds 10-20ms" `Quick
          test_timeout_bounds;
        Alcotest.test_case "Fig 4/5 factoring cost and behaviour" `Quick
          test_lock_factor;
        Alcotest.test_case "measurement discipline (<2.5% stddev)" `Slow
          test_stats_match_paper_deviation_discipline;
        Alcotest.test_case "table rendering support" `Quick
          test_table_support;
        Alcotest.test_case "probe timing is exact" `Quick
          test_probe_timing_exact;
        QCheck_alcotest.to_alcotest prop_parser_never_crashes;
      ] );
  ]
