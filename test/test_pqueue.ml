(* Property tests for {!Vino_sim.Pqueue}: the event queue's determinism
   rests on pops coming back sorted by key with FIFO order among equal
   keys. The model is a list kept in (key, insertion-sequence) order;
   random interleavings of adds and pops must agree with it at every
   step, including mid-stream pops, not just on a final drain. *)

module Pqueue = Vino_sim.Pqueue

type op = Add of int | Pop

let gen_ops =
  (* Small key range so equal keys are common — that's where FIFO
     stability can break. *)
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (frequency
         [ (3, map (fun k -> Add k) (int_range 0 8)); (2, pure Pop) ]))

let pp_op = function Add k -> Printf.sprintf "add %d" k | Pop -> "pop"

let print_ops ops = String.concat "; " (List.map pp_op ops)

let prop_matches_model =
  QCheck2.Test.make ~name:"pops sorted by key, FIFO within equal keys"
    ~count:500 ~print:print_ops gen_ops (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] (* (key, seq) in pop order *) and seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Add k ->
              Pqueue.add q ~key:k !seq;
              (* stable insert: strictly-greater keys stay behind us *)
              let rec insert = function
                | (k', s') :: rest when k' <= k -> (k', s') :: insert rest
                | rest -> (k, !seq) :: rest
              in
              model := insert !model;
              incr seq;
              Pqueue.length q = List.length !model
          | Pop -> (
              match (Pqueue.pop q, !model) with
              | None, [] -> true
              | Some (k, v), (mk, ms) :: rest ->
                  model := rest;
                  k = mk && v = ms
              | Some _, [] | None, _ :: _ ->
                  QCheck2.Test.fail_report
                    "queue and model disagree on empty"))
        ops
      &&
      (* drain: whatever remains must still come out in model order *)
      let rec drain () =
        match (Pqueue.pop q, !model) with
        | None, [] -> Pqueue.is_empty q
        | Some (k, v), (mk, ms) :: rest ->
            model := rest;
            k = mk && v = ms && drain ()
        | Some _, [] | None, _ :: _ -> false
      in
      drain ())

let prop_peek_consistent =
  QCheck2.Test.make ~name:"peek_key agrees with the next pop" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 10))
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.add q ~key:k i) keys;
      let rec loop () =
        match Pqueue.peek_key q with
        | None -> Pqueue.pop q = None
        | Some pk -> (
            match Pqueue.pop q with
            | Some (k, _) -> k = pk && loop ()
            | None -> false)
      in
      loop ())

let suite =
  [
    ( "pqueue",
      List.map QCheck_alcotest.to_alcotest
        [ prop_matches_model; prop_peek_consistent ] );
  ]
