(* Tests for the virtual memory substrate: frames, VAS, two-level eviction
   with graft verification, Cao's swap, the page daemon. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Graft_point = Vino_core.Graft_point
module Cred = Vino_core.Cred
module Rlimit = Vino_txn.Rlimit
module Frame = Vino_vmem.Frame
module Vas = Vino_vmem.Vas
module Evict = Vino_vmem.Evict
module Grafts = Vino_vmem.Grafts
module Pagedaemon = Vino_vmem.Pagedaemon

let app = Cred.user "vm-test" ~limits:(Rlimit.unlimited ())

type fx = { kernel : Kernel.t; vas : Vas.t; evictor : Evict.t }

let fixture ?(frames = 16) () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) ~tick:1_000 () in
  let table = Frame.create_table ~frames in
  let evictor = Evict.create kernel ~frames:table () in
  let vas = Vas.create kernel ~name:"test-vas" () in
  Evict.register_vas evictor vas;
  { kernel; vas; evictor }

let in_kernel fx f =
  ignore (Engine.spawn fx.kernel.Kernel.engine ~name:"body" f);
  Kernel.run fx.kernel;
  match Engine.failures fx.kernel.Kernel.engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s: %s" name (Printexc.to_string exn)

let touch_all fx pages =
  List.iter (fun p -> ignore (Evict.touch fx.evictor fx.vas ~vpage:p)) pages

let install_graft fx source =
  let image =
    match Kernel.seal fx.kernel (Vino_vm.Asm.assemble_exn source) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  match
    Graft_point.replace (Vas.evict_point fx.vas) fx.kernel ~cred:app
      ~shared_words:64 ~heap_words:2048 image
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_frame_allocate_release () =
  let t = Frame.create_table ~frames:4 in
  Alcotest.(check int) "all free" 4 (Frame.free_count t);
  let f =
    match Frame.allocate t with Ok f -> f | Error `None_free -> assert false
  in
  Alcotest.(check int) "one used" 1 (Frame.used_count t);
  Frame.release t f;
  Alcotest.(check int) "released" 4 (Frame.free_count t);
  for _ = 1 to 4 do
    ignore (Frame.allocate t)
  done;
  match Frame.allocate t with
  | Error `None_free -> ()
  | Ok _ -> Alcotest.fail "overcommitted frames"

let test_touch_faults_then_hits () =
  let fx = fixture () in
  in_kernel fx (fun () ->
      (match Evict.touch fx.evictor fx.vas ~vpage:3 with
      | `Fault -> ()
      | `Hit -> Alcotest.fail "first touch must fault");
      match Evict.touch fx.evictor fx.vas ~vpage:3 with
      | `Hit -> ()
      | `Fault -> Alcotest.fail "second touch must hit");
  Alcotest.(check int) "one fault" 1 (Vas.faults fx.vas);
  Alcotest.(check bool) "resident" true (Vas.is_resident fx.vas 3)

let test_eviction_under_pressure () =
  let fx = fixture ~frames:4 () in
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2; 3 ];
      (* a fifth page forces an eviction *)
      touch_all fx [ 4 ]);
  Alcotest.(check int) "one eviction" 1 (Evict.evictions fx.evictor);
  Alcotest.(check bool) "new page resident" true (Vas.is_resident fx.vas 4)

let test_second_chance_respects_reference_bits () =
  let fx = fixture ~frames:8 () in
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2; 3 ];
      (* clear all reference bits with one pass *)
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      (* re-reference page 0 so it gets a second chance *)
      Vas.reference fx.vas ~vpage:0;
      match Evict.select_replacement fx.evictor ~cred:app with
      | Ok frame ->
          (match frame.Frame.owner with
          | Some o ->
              Alcotest.(check bool) "victim is not the referenced page" true
                (o.Frame.vpage <> 0)
          | None -> Alcotest.fail "victim has no owner")
      | Error `Nothing_evictable -> Alcotest.fail "nothing evictable")

let test_wired_pages_never_selected () =
  let fx = fixture ~frames:8 () in
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2 ];
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      Vas.wire fx.vas ~vpage:0;
      Vas.wire fx.vas ~vpage:1;
      for _ = 1 to 5 do
        match Evict.select_replacement fx.evictor ~cred:app with
        | Ok frame ->
            Alcotest.(check bool) "wired page never chosen" false
              frame.Frame.wired
        | Error `Nothing_evictable -> Alcotest.fail "nothing evictable"
      done)

let test_graft_overrules_and_cao_swap () =
  let fx = fixture ~frames:8 () in
  install_graft fx
    (Grafts.protect_hot_pages_source ~lock_kcall:(Vas.lock_name fx.vas) ());
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2; 3 ];
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      (* protect the page the clock would pick *)
      Vas.protect_pages fx.kernel fx.vas [ 0 ];
      let before = Evict.queue_order fx.evictor in
      match Evict.select_replacement fx.evictor ~cred:app with
      | Error `Nothing_evictable -> Alcotest.fail "nothing evictable"
      | Ok frame -> (
          match frame.Frame.owner with
          | Some o ->
              Alcotest.(check bool) "hot page spared" true (o.Frame.vpage <> 0);
              Alcotest.(check int) "overrule recorded" 1
                (Evict.graft_overrules fx.evictor);
              (* Cao: the victim moved into the replacement's old slot *)
              let after = Evict.queue_order fx.evictor in
              Alcotest.(check int) "queue shrank by one"
                (List.length before - 1) (List.length after)
          | None -> Alcotest.fail "no owner"));
  Alcotest.(check bool) "graft survives" true
    (Graft_point.grafted (Vas.evict_point fx.vas))

let test_invalid_suggestion_ignored () =
  (* "If either of these checks fails the system ignores the request and
     evicts the original victim" — and the graft is NOT removed. *)
  let fx = fixture ~frames:8 () in
  install_graft fx Grafts.suggest_invalid_source;
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2 ];
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      match Evict.select_replacement fx.evictor ~cred:app with
      | Ok frame -> (
          match frame.Frame.owner with
          | Some o ->
              Alcotest.(check int) "original victim evicted" 0 o.Frame.vpage
          | None -> Alcotest.fail "no owner")
      | Error `Nothing_evictable -> Alcotest.fail "nothing evictable");
  (* both the warm-up pass and the checked pass consulted the graft *)
  Alcotest.(check int) "invalid suggestions counted" 2
    (Evict.invalid_suggestions fx.evictor);
  Alcotest.(check bool) "graft NOT removed (unlike a fault)" true
    (Graft_point.grafted (Vas.evict_point fx.vas))

let test_wired_suggestion_rejected () =
  let fx = fixture ~frames:8 () in
  install_graft fx
    (Grafts.protect_hot_pages_source ~lock_kcall:(Vas.lock_name fx.vas) ());
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2 ];
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      (* protect the victim so the graft suggests page 1 — but wire 1 *)
      Vas.protect_pages fx.kernel fx.vas [ 0 ];
      Vas.wire fx.vas ~vpage:1;
      match Evict.select_replacement fx.evictor ~cred:app with
      | Ok frame -> (
          (* the graft scans candidates; 1 is evictable-looking to it but
             the kernel's verification sees the wired bit... the graft
             skips to 2 only if told; here candidates exclude wired pages
             already, so the suggestion is 2 *)
          match frame.Frame.owner with
          | Some o ->
              Alcotest.(check bool) "wired page never evicted" true
                (o.Frame.vpage <> 1)
          | None -> Alcotest.fail "no owner")
      | Error `Nothing_evictable -> Alcotest.fail "nothing evictable")

let test_crashing_evict_graft_falls_back () =
  let fx = fixture ~frames:8 () in
  install_graft fx
    [
      Li (Vino_vm.Asm.r5, 0);
      Li (Vino_vm.Asm.r6, 1);
      Alu (Vino_vm.Insn.Div, Vino_vm.Asm.r0, Vino_vm.Asm.r6, Vino_vm.Asm.r5);
      Ret;
    ];
  in_kernel fx (fun () ->
      touch_all fx [ 0; 1; 2 ];
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      match Evict.select_replacement fx.evictor ~cred:app with
      | Ok _ -> ()
      | Error `Nothing_evictable -> Alcotest.fail "nothing evictable");
  Alcotest.(check bool) "crashing graft removed" false
    (Graft_point.grafted (Vas.evict_point fx.vas))

let test_pagedaemon_maintains_watermark () =
  let fx = fixture ~frames:16 () in
  let daemon =
    Pagedaemon.create fx.kernel ~evictor:fx.evictor ~low_watermark:4
      ~high_watermark:8 ()
  in
  in_kernel fx (fun () ->
      (* consume 14 of 16 frames: free = 2 < low *)
      touch_all fx (List.init 14 (fun k -> k));
      ignore (Evict.select_replacement fx.evictor ~cred:app);
      Pagedaemon.kick daemon;
      Engine.delay (Vino_txn.Tcosts.us 1_000.));
  Alcotest.(check bool) "free pool refilled to the high watermark" true
    (Evict.free_frames fx.evictor >= 8);
  Alcotest.(check bool) "daemon ran" true (Pagedaemon.passes daemon >= 1);
  Pagedaemon.stop daemon;
  Kernel.run fx.kernel

module Memobj = Vino_vmem.Memobj

let test_memobj_anonymous () =
  let fx = fixture ~frames:8 () in
  let obj =
    Memobj.map fx.evictor fx.vas ~vpage_start:100 ~pages:4 Memobj.Anonymous
  in
  in_kernel fx (fun () ->
      (match Memobj.touch obj ~cred:app ~page:2 with
      | `Fault -> ()
      | `Hit -> Alcotest.fail "first touch must fault");
      match Memobj.touch obj ~cred:app ~page:2 with
      | `Hit -> ()
      | `Fault -> Alcotest.fail "second touch must hit");
  Alcotest.(check bool) "page resident at the mapped address" true
    (Vas.is_resident fx.vas 102);
  Alcotest.(check int) "one object fault" 1 (Memobj.faults obj)

let test_memobj_file_backed_readahead () =
  (* a mapped file inherits the file's grafted read-ahead: fault page 0
     while announcing page 5; page 5's block lands in the cache *)
  let fx = fixture ~frames:16 () in
  let disk = Vino_fs.Disk.create fx.kernel.Kernel.engine () in
  let cache = Vino_fs.Cache.create ~capacity:32 () in
  let file =
    Vino_fs.File.openf ~kernel:fx.kernel ~cache ~disk ~name:"mapped"
      ~first_block:0 ~blocks:16 ()
  in
  let image =
    match
      Kernel.seal fx.kernel
        (Vino_vm.Asm.assemble_exn
           (Vino_fs.Readahead.app_directed_source
              ~lock_kcall:(Vino_fs.File.ra_lock_name file)))
    with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  (match
     Graft_point.replace (Vino_fs.File.ra_point file) fx.kernel ~cred:app
       ~shared_words:16 image
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let obj =
    Memobj.map fx.evictor fx.vas ~vpage_start:0 ~pages:16
      (Memobj.File_backed { file; start_block = 0 })
  in
  in_kernel fx (fun () ->
      Vino_fs.Readahead.announce fx.kernel (Vino_fs.File.ra_point file) 5;
      ignore (Memobj.touch obj ~cred:app ~page:0);
      Engine.delay (Vino_txn.Tcosts.us 50_000.));
  Alcotest.(check bool) "announced block prefetched via mmap fault" true
    (Vino_fs.Cache.mem cache 5)

let test_memobj_overlap_rejected () =
  let fx = fixture () in
  let (_ : Memobj.t) =
    Memobj.map fx.evictor fx.vas ~vpage_start:10 ~pages:10 Memobj.Anonymous
  in
  (match
     Memobj.map fx.evictor fx.vas ~vpage_start:15 ~pages:2 Memobj.Anonymous
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping object accepted");
  (* adjacent is fine; and unmap frees the range *)
  let o2 =
    Memobj.map fx.evictor fx.vas ~vpage_start:20 ~pages:2 Memobj.Anonymous
  in
  Memobj.unmap o2;
  match
    Memobj.map fx.evictor fx.vas ~vpage_start:20 ~pages:2 Memobj.Anonymous
  with
  | (_ : Memobj.t) -> ()

let test_memobj_find () =
  let fx = fixture () in
  let obj =
    Memobj.map fx.evictor fx.vas ~vpage_start:30 ~pages:5 Memobj.Anonymous
  in
  (match Memobj.find fx.vas ~vpage:32 with
  | Some o -> Alcotest.(check bool) "found the object" true (o == obj)
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "outside range" true
    (Memobj.find fx.vas ~vpage:35 = None)

let suite =
  [
    ( "vmem",
      [
        Alcotest.test_case "frame allocate/release" `Quick
          test_frame_allocate_release;
        Alcotest.test_case "touch faults then hits" `Quick
          test_touch_faults_then_hits;
        Alcotest.test_case "eviction under memory pressure" `Quick
          test_eviction_under_pressure;
        Alcotest.test_case "second chance respects reference bits" `Quick
          test_second_chance_respects_reference_bits;
        Alcotest.test_case "wired pages never selected" `Quick
          test_wired_pages_never_selected;
        Alcotest.test_case "graft overrules victim; Cao swap applied" `Quick
          test_graft_overrules_and_cao_swap;
        Alcotest.test_case "invalid suggestion ignored, graft kept (§4.2.1)"
          `Quick test_invalid_suggestion_ignored;
        Alcotest.test_case "wired suggestion rejected" `Quick
          test_wired_suggestion_rejected;
        Alcotest.test_case "crashing eviction graft falls back" `Quick
          test_crashing_evict_graft_falls_back;
        Alcotest.test_case "page daemon maintains watermarks" `Quick
          test_pagedaemon_maintains_watermark;
        Alcotest.test_case "anonymous memory objects zero-fill" `Quick
          test_memobj_anonymous;
        Alcotest.test_case "mapped files get grafted read-ahead" `Quick
          test_memobj_file_backed_readahead;
        Alcotest.test_case "overlapping objects rejected" `Quick
          test_memobj_overlap_rejected;
        Alcotest.test_case "object lookup by page" `Quick test_memobj_find;
      ] );
  ]
