(* Tests for simulated memory and SFI segments. *)

module Mem = Vino_vm.Mem

let test_load_store () =
  let m = Mem.create 64 in
  Mem.store m 10 42;
  Alcotest.(check int) "read back" 42 (Mem.load m 10);
  Alcotest.(check int) "zero initialised" 0 (Mem.load m 11);
  Alcotest.(check int) "size" 64 (Mem.size m)

let test_bounds () =
  let m = Mem.create 8 in
  let expect_fault write f =
    match f () with
    | exception Mem.Fault { write = w; _ } ->
        Alcotest.(check bool) "fault kind" write w
    | _ -> Alcotest.fail "expected Mem.Fault"
  in
  expect_fault false (fun () -> Mem.load m 8);
  expect_fault false (fun () -> Mem.load m (-1));
  expect_fault true (fun () ->
      Mem.store m 8 0;
      0);
  expect_fault true (fun () ->
      Mem.store m (-3) 0;
      0)

let test_segment_validation () =
  let ok base size =
    match Mem.segment ~base ~size with
    | (_ : Mem.segment) -> true
    | exception Invalid_argument _ -> false
  in
  Alcotest.(check bool) "aligned power of two" true (ok 64 64);
  Alcotest.(check bool) "base zero" true (ok 0 128);
  Alcotest.(check bool) "non power of two" false (ok 0 48);
  Alcotest.(check bool) "misaligned base" false (ok 32 64);
  Alcotest.(check bool) "zero size" false (ok 0 0)

let test_sandbox_confines () =
  let seg = Mem.segment ~base:128 ~size:64 in
  Alcotest.(check bool) "inside stays" true
    (Mem.sandbox seg 130 >= 128 && Mem.sandbox seg 130 < 192);
  Alcotest.(check int) "inside is identity" 130 (Mem.sandbox seg 130);
  Alcotest.(check bool) "outside forced in" true
    (Mem.in_segment seg (Mem.sandbox seg 5000));
  Alcotest.(check bool) "negative forced in" true
    (Mem.in_segment seg (Mem.sandbox seg (-77)))

let test_blit () =
  let m = Mem.create 32 in
  Mem.blit_in m 4 [| 1; 2; 3 |];
  Alcotest.(check (array int)) "round trip" [| 1; 2; 3 |] (Mem.blit_out m 4 3);
  Mem.fill m 0 4 9;
  Alcotest.(check (array int)) "fill" [| 9; 9; 9; 9 |] (Mem.blit_out m 0 4)

(* Regression: blit_in/fill validate the whole range before writing, so
   a faulting call leaves memory untouched (no partial writes). *)
let test_blit_atomic () =
  let m = Mem.create 8 in
  Mem.fill m 0 8 7;
  let untouched what =
    Alcotest.(check (array int)) what (Array.make 8 7) (Mem.blit_out m 0 8)
  in
  (match Mem.blit_in m 6 [| 1; 2; 3 |] with
  | exception Mem.Fault { addr; write } ->
      Alcotest.(check bool) "write fault" true write;
      Alcotest.(check int) "fault at first out-of-bounds word" 8 addr
  | () -> Alcotest.fail "expected Mem.Fault");
  untouched "memory untouched after partial blit fault";
  (match Mem.fill m 5 6 9 with
  | exception Mem.Fault { write; _ } ->
      Alcotest.(check bool) "write fault" true write
  | () -> Alcotest.fail "expected Mem.Fault");
  untouched "memory untouched after partial fill fault";
  (match Mem.blit_in m (-2) [| 1; 2 |] with
  | exception Mem.Fault { addr; _ } ->
      Alcotest.(check int) "negative fault address preserved" (-2) addr
  | () -> Alcotest.fail "expected Mem.Fault");
  untouched "memory untouched after negative-address blit";
  Mem.fill m 3 0 9;
  untouched "zero-length fill is a no-op"

(* Property: sandboxing always produces an in-segment address, and is the
   identity on in-segment addresses. *)
let prop_sandbox =
  QCheck2.Test.make ~name:"sandbox confines every address" ~count:500
    QCheck2.Gen.(
      triple (int_range 0 10) (int_range 0 10) (int_range (-100000) 100000))
    (fun (base_shift, size_shift, addr) ->
      let size = 1 lsl (size_shift + 2) in
      let base = size * base_shift in
      let seg = Mem.segment ~base ~size in
      let s = Mem.sandbox seg addr in
      Mem.in_segment seg s
      && (if Mem.in_segment seg addr then s = addr else true))

let suite =
  [
    ( "mem",
      [
        Alcotest.test_case "load/store round trip" `Quick test_load_store;
        Alcotest.test_case "out-of-bounds access faults" `Quick test_bounds;
        Alcotest.test_case "segment invariant validation" `Quick
          test_segment_validation;
        Alcotest.test_case "sandbox confines addresses" `Quick
          test_sandbox_confines;
        Alcotest.test_case "blit helpers" `Quick test_blit;
        Alcotest.test_case "blit/fill atomicity on faults" `Quick
          test_blit_atomic;
        QCheck_alcotest.to_alcotest prop_sandbox;
      ] );
  ]
