(* Tests for the undo call stack. *)

module Undo_log = Vino_txn.Undo_log

let test_lifo_replay () =
  let log = Undo_log.create () in
  let order = ref [] in
  let record label = Undo_log.push log ~label (fun () -> order := label :: !order) in
  record "first";
  record "second";
  record "third";
  Alcotest.(check int) "depth" 3 (Undo_log.length log);
  ignore (Undo_log.replay log);
  Alcotest.(check (list string))
    "most recent first"
    [ "third"; "second"; "first" ]
    (List.rev !order);
  Alcotest.(check bool) "emptied" true (Undo_log.is_empty log)

let test_replay_cost () =
  let log = Undo_log.create () in
  Undo_log.push log ~cost:100 ~label:"a" ignore;
  Undo_log.push log ~cost:25 ~label:"b" ignore;
  Alcotest.(check int) "total cost" 125 (Undo_log.replay log)

let test_merge_preserves_order () =
  let parent = Undo_log.create () in
  let child = Undo_log.create () in
  let order = ref [] in
  let record log label =
    Undo_log.push log ~label (fun () -> order := label :: !order)
  in
  record parent "p1";
  record child "c1";
  record child "c2";
  Undo_log.merge_into ~parent child;
  Alcotest.(check bool) "child emptied" true (Undo_log.is_empty child);
  Alcotest.(check (list string))
    "child entries are more recent"
    [ "c2"; "c1"; "p1" ]
    (Undo_log.labels parent);
  ignore (Undo_log.replay parent);
  Alcotest.(check (list string))
    "replay order" [ "c2"; "c1"; "p1" ] (List.rev !order)

let test_state_restoration () =
  (* The canonical use: accessor mutates, undo restores. *)
  let cell = ref 1 in
  let log = Undo_log.create () in
  let set v =
    let old = !cell in
    Undo_log.push log ~label:"set" (fun () -> cell := old);
    cell := v
  in
  set 2;
  set 3;
  set 4;
  ignore (Undo_log.replay log);
  Alcotest.(check int) "restored" 1 !cell

(* Property: a parent transaction works, then a nested child works (a child
   runs on the same thread, so its pushes strictly follow the parent's),
   then the child merges and the parent replays — the initial state comes
   back exactly. *)
let prop_merge_replay_restores =
  let write_gen =
    QCheck2.Gen.(
      list_size (int_range 0 30) (pair (int_range 0 7) (int_range (-100) 100)))
  in
  QCheck2.Test.make ~name:"nested merge + replay restores state" ~count:200
    (QCheck2.Gen.pair write_gen write_gen)
    (fun (parent_writes, child_writes) ->
      let regs = Array.make 8 0 in
      Array.iteri (fun k _ -> regs.(k) <- k * 11) regs;
      let initial = Array.copy regs in
      let parent = Undo_log.create () in
      let child = Undo_log.create () in
      let apply log (slot, v) =
        let old = regs.(slot) in
        Undo_log.push log ~label:"w" (fun () -> regs.(slot) <- old);
        regs.(slot) <- v
      in
      List.iter (apply parent) parent_writes;
      List.iter (apply child) child_writes;
      Undo_log.merge_into ~parent child;
      ignore (Undo_log.replay parent);
      regs = initial)

let test_replay_survives_raising_entry () =
  (* Regression (fault mid-undo): an entry that raises must be reported
     through [on_error] and skipped — the remaining entries still replay,
     the log still empties, and the total still counts every entry. *)
  let log = Undo_log.create () in
  let order = ref [] and errs = ref [] in
  Undo_log.push log ~cost:5 ~label:"a" (fun () -> order := "a" :: !order);
  Undo_log.push log ~cost:7 ~label:"boom" (fun () -> failwith "boom");
  Undo_log.push log ~cost:9 ~label:"c" (fun () -> order := "c" :: !order);
  let total =
    Undo_log.replay
      ~on_error:(fun ~label exn -> errs := (label, Printexc.to_string exn) :: !errs)
      log
  in
  Alcotest.(check int) "total cost includes the raising entry" 21 total;
  Alcotest.(check (list string)) "other entries ran, LIFO" [ "c"; "a" ]
    (List.rev !order);
  (match !errs with
  | [ (label, _) ] -> Alcotest.(check string) "label reported" "boom" label
  | es -> Alcotest.failf "expected one error, got %d" (List.length es));
  Alcotest.(check bool) "emptied" true (Undo_log.is_empty log)

let test_replay_default_swallows () =
  (* Without a handler a raising entry is silently skipped — replay never
     throws into the abort path. *)
  let log = Undo_log.create () in
  let ran = ref false in
  Undo_log.push log ~label:"fine" (fun () -> ran := true);
  Undo_log.push log ~label:"boom" (fun () -> failwith "boom");
  ignore (Undo_log.replay log);
  Alcotest.(check bool) "non-raising entry still ran" true !ran

let test_clear_discards () =
  let log = Undo_log.create () in
  let ran = ref false in
  Undo_log.push log ~cost:3 ~label:"x" (fun () -> ran := true);
  Undo_log.clear log;
  Alcotest.(check bool) "emptied" true (Undo_log.is_empty log);
  Alcotest.(check int) "nothing to replay" 0 (Undo_log.replay log);
  Alcotest.(check bool) "entry never ran" false !ran

let suite =
  [
    ( "undo_log",
      [
        Alcotest.test_case "LIFO replay" `Quick test_lifo_replay;
        Alcotest.test_case "replay returns total cost" `Quick test_replay_cost;
        Alcotest.test_case "raising entry reported and skipped" `Quick
          test_replay_survives_raising_entry;
        Alcotest.test_case "replay never throws by default" `Quick
          test_replay_default_swallows;
        Alcotest.test_case "clear discards without running" `Quick
          test_clear_discards;
        Alcotest.test_case "merge keeps child entries most-recent" `Quick
          test_merge_preserves_order;
        Alcotest.test_case "accessor-style state restoration" `Quick
          test_state_restoration;
        QCheck_alcotest.to_alcotest prop_merge_replay_restores;
      ] );
  ]
