(* Property tests for the growable-array rewrite of {!Vino_sim.Stats}.

   The reference below is the previous list-based implementation,
   verbatim. The array version caches a sorted view and mirrors the
   reference's float summation orders exactly (newest-first for
   mean/stddev, ascending over the sorted view for the trimmed forms),
   so every statistic must agree {e bitwise} — the checks use exact
   float equality, not a tolerance. *)

module Stats = Vino_sim.Stats

module Reference = struct
  type t = { mutable samples : float list; mutable n : int }

  let create () = { samples = []; n = 0 }

  let add t x =
    t.samples <- x :: t.samples;
    t.n <- t.n + 1

  let mean_of = function
    | [] -> 0.
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

  let stddev_of = function
    | [] | [ _ ] -> 0.
    | xs ->
        let m = mean_of xs in
        let sq =
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
        in
        sqrt (sq /. float_of_int (List.length xs - 1))

  let mean t = mean_of t.samples
  let stddev t = stddev_of t.samples

  let trimmed ?(fraction = 0.10) t =
    let sorted = List.sort compare t.samples in
    let n = List.length sorted in
    let drop = int_of_float (fraction *. float_of_int n) in
    sorted |> List.filteri (fun k _ -> k >= drop && k < n - drop)

  let trimmed_mean ?fraction t = mean_of (trimmed ?fraction t)
  let trimmed_stddev ?fraction t = stddev_of (trimmed ?fraction t)
  let min_value t = List.fold_left min infinity t.samples
  let max_value t = List.fold_left max neg_infinity t.samples

  let percentile t p =
    match List.sort compare t.samples with
    | [] -> 0.
    | sorted ->
        let n = List.length sorted in
        let rank = p /. 100. *. float_of_int (n - 1) in
        let low = int_of_float rank in
        let high = min (low + 1) (n - 1) in
        let frac = rank -. float_of_int low in
        let nth k = List.nth sorted k in
        (nth low *. (1. -. frac)) +. (nth high *. frac)
end

(* Awkward but well-behaved floats (no nan/inf, duplicates likely). *)
let gen_sample =
  QCheck2.Gen.(map (fun n -> float_of_int n /. 8.) (int_range (-4000) 4000))

let gen_samples = QCheck2.Gen.(list_size (int_range 0 300) gen_sample)

let feed samples =
  let s = Stats.create () and r = Reference.create () in
  List.iter
    (fun x ->
      Stats.add s x;
      Reference.add r x)
    samples;
  (s, r)

let same name a b =
  if not (Float.equal a b) then
    QCheck2.Test.fail_reportf "%s: array %.17g <> reference %.17g" name a b;
  true

let prop_moments =
  QCheck2.Test.make ~name:"mean/stddev/min/max agree bitwise" ~count:300
    gen_samples (fun samples ->
      let s, r = feed samples in
      Stats.count s = List.length samples
      && same "mean" (Stats.mean s) (Reference.mean r)
      && same "stddev" (Stats.stddev s) (Reference.stddev r)
      && (samples = []
         || same "min" (Stats.min_value s) (Reference.min_value r)
            && same "max" (Stats.max_value s) (Reference.max_value r)))

let prop_trimmed =
  QCheck2.Test.make ~name:"trimmed mean/stddev agree bitwise" ~count:300
    QCheck2.Gen.(pair gen_samples (float_range 0. 0.4))
    (fun (samples, fraction) ->
      let s, r = feed samples in
      same "trimmed_mean" (Stats.trimmed_mean s) (Reference.trimmed_mean r)
      && same "trimmed_mean frac"
           (Stats.trimmed_mean ~fraction s)
           (Reference.trimmed_mean ~fraction r)
      && same "trimmed_stddev" (Stats.trimmed_stddev s)
           (Reference.trimmed_stddev r))

let prop_percentile =
  QCheck2.Test.make ~name:"percentile agrees bitwise" ~count:300
    QCheck2.Gen.(pair gen_samples (float_range 0. 100.))
    (fun (samples, p) ->
      let s, r = feed samples in
      same "percentile" (Stats.percentile s p) (Reference.percentile r p))

(* The sorted view is cached; adds must invalidate it. Query, add more,
   query again — a stale cache fails the second round. *)
let prop_cache_invalidation =
  QCheck2.Test.make ~name:"adds invalidate the cached sorted view"
    ~count:300
    QCheck2.Gen.(pair gen_samples (list_size (int_range 1 50) gen_sample))
    (fun (first, second) ->
      let s, r = feed first in
      ignore (Stats.trimmed_mean s : float);
      ignore (Stats.percentile s 50. : float);
      List.iter
        (fun x ->
          Stats.add s x;
          Reference.add r x)
        second;
      same "trimmed_mean after growth" (Stats.trimmed_mean s)
        (Reference.trimmed_mean r)
      && same "percentile after growth" (Stats.percentile s 90.)
           (Reference.percentile r 90.)
      && same "mean after growth" (Stats.mean s) (Reference.mean r))

let suite =
  [
    ( "stats",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_moments; prop_trimmed; prop_percentile;
          prop_cache_invalidation;
        ] );
  ]
