(* Tests for the disaster rig: seeded fault-injection campaigns with
   post-recovery invariant checks across all five graft-point families. *)

module Seed = Vino_disaster.Seed
module Injector = Vino_disaster.Injector
module Site = Vino_disaster.Site
module Campaign = Vino_disaster.Campaign
module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Txn = Vino_txn.Txn
module Lock = Vino_txn.Lock

(* ------------------------------ seed ---------------------------------- *)

let test_seed_deterministic () =
  let a = Seed.make 7 and b = Seed.make 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Seed.bits a) (Seed.bits b)
  done;
  let c = Seed.make 8 in
  Alcotest.(check bool) "different seed, different stream" true
    (List.init 10 (fun _ -> Seed.bits a)
    <> List.init 10 (fun _ -> Seed.bits c))

let test_seed_derive_independent () =
  let draws t = List.init 10 (fun _ -> Seed.bits t) in
  let a = draws (Seed.derive ~seed:1 0) in
  Alcotest.(check bool) "adjacent indices decorrelated" true
    (a <> draws (Seed.derive ~seed:1 1));
  Alcotest.(check bool) "re-derivation replays" true
    (a = draws (Seed.derive ~seed:1 0))

let test_seed_bounds () =
  let t = Seed.make 3 in
  for _ = 1 to 1000 do
    let v = Seed.range t ~lo:10 ~hi:20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v < 20)
  done

(* --------------------------- injectors -------------------------------- *)

let test_injector_same_seed_same_variant () =
  let site = Site.create Site.Stream_copy in
  List.iter
    (fun kind ->
      let v1 =
        Injector.apply kind ~rng:(Seed.derive ~seed:5 9) ~rig:site.Site.rig
          site.Site.healthy
      in
      let v2 =
        Injector.apply kind ~rng:(Seed.derive ~seed:5 9) ~rig:site.Site.rig
          site.Site.healthy
      in
      Alcotest.(check bool)
        (Injector.name kind ^ " reproducible")
        true
        (v1.Injector.source = v2.Injector.source
        && v1.Injector.expect = v2.Injector.expect))
    Injector.all

let test_injector_changes_source () =
  let site = Site.create Site.Stream_copy in
  List.iter
    (fun kind ->
      let v =
        Injector.apply kind ~rng:(Seed.derive ~seed:5 9) ~rig:site.Site.rig
          site.Site.healthy
      in
      Alcotest.(check bool)
        (Injector.name kind ^ " mutates the source")
        true
        (v.Injector.source <> site.Site.healthy))
    Injector.all

(* ------------------------ single injections --------------------------- *)

(* Find the first campaign index that hits (family, kind). *)
let index_of family kind =
  let rec go i =
    if i > 1000 then Alcotest.fail "combo not found"
    else
      let f, k = Campaign.combo i in
      if f = family && k = kind then i else go (i + 1)
  in
  go 0

let check_clean r =
  match r.Campaign.violations with
  | [] -> ()
  | vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)

let test_wild_store_contained () =
  (* Wild stores are defanged by the sandbox: whatever the outcome for the
     graft, the targeted kernel word is untouched (checked by the record's
     posts) and every invariant holds. *)
  List.iter
    (fun family ->
      let r =
        Campaign.run_injection ~seed:11
          ~index:(index_of family Injector.Wild_store)
      in
      check_clean r)
    Site.all_families

let test_infinite_loop_recovered () =
  List.iter
    (fun family ->
      let r =
        Campaign.run_injection ~seed:11
          ~index:(index_of family Injector.Infinite_loop)
      in
      check_clean r;
      Alcotest.(check bool)
        (Site.family_name family ^ ": loop recovered")
        true
        (r.Campaign.observed = Injector.Recovered))
    Site.all_families

let test_lock_hog_aborted_and_lock_released () =
  let r =
    Campaign.run_injection ~seed:11
      ~index:(index_of Site.Stream_copy Injector.Lock_hog)
  in
  check_clean r;
  Alcotest.(check bool) "recovered" true
    (r.Campaign.observed = Injector.Recovered)

let test_bad_call_both_variants_appear () =
  (* Across many seeds the bad-call injector must produce both the
     statically-provable variant (load rejected) and the laundered variant
     (caught by the runtime probe) — and both must leave a clean site. *)
  let outcomes = ref [] in
  for seed = 1 to 12 do
    let r =
      Campaign.run_injection ~seed
        ~index:(index_of Site.Stream_copy Injector.Bad_call)
    in
    check_clean r;
    outcomes := r.Campaign.observed :: !outcomes
  done;
  Alcotest.(check bool) "some loads rejected by the static check" true
    (List.mem Injector.Rejected !outcomes);
  Alcotest.(check bool) "some caught at run time" true
    (List.mem Injector.Recovered !outcomes)

let test_undo_bomb_still_rolls_back () =
  let r =
    Campaign.run_injection ~seed:11
      ~index:(index_of Site.Fs_readahead Injector.Undo_bomb)
  in
  check_clean r

let test_nested_fault_merged_state_recovered () =
  List.iter
    (fun family ->
      let r =
        Campaign.run_injection ~seed:11
          ~index:(index_of family Injector.Nested_fault)
      in
      check_clean r)
    [ Site.Stream_copy; Site.Vmem_evict ]

(* ----------------------------- campaign ------------------------------- *)

let test_campaign_full_product_clean () =
  (* 40 injections = the full 5-family x 8-injector product, each run twice
     (determinism check). The ISSUE's acceptance bar. *)
  let report = Campaign.run ~seed:1 ~count:40 () in
  Alcotest.(check int) "all families" 5 (Campaign.families_covered report);
  Alcotest.(check int) "all injectors" 8 (Campaign.injectors_covered report);
  (match Campaign.violations report with
  | [] -> ()
  | vs ->
      Alcotest.failf "%d violations:\n%s" (List.length vs)
        (String.concat "\n" vs));
  Alcotest.(check bool) "report ok" true (Campaign.ok report)

let test_campaign_deterministic_across_runs () =
  let fingerprints report =
    List.map (fun r -> r.Campaign.fingerprint) report.Campaign.records
  in
  let a = Campaign.run ~check_determinism:false ~seed:42 ~count:10 () in
  let b = Campaign.run ~check_determinism:false ~seed:42 ~count:10 () in
  Alcotest.(check (list string))
    "same seed, same fingerprints" (fingerprints a) (fingerprints b);
  let c = Campaign.run ~check_determinism:false ~seed:43 ~count:10 () in
  Alcotest.(check bool) "different seed, different campaign" true
    (fingerprints a <> fingerprints c)

let suite =
  [
    ( "disaster",
      [
        Alcotest.test_case "seed: deterministic stream" `Quick
          test_seed_deterministic;
        Alcotest.test_case "seed: derived streams independent" `Quick
          test_seed_derive_independent;
        Alcotest.test_case "seed: range bounds" `Quick test_seed_bounds;
        Alcotest.test_case "injector: same seed, same variant" `Quick
          test_injector_same_seed_same_variant;
        Alcotest.test_case "injector: variant differs from healthy" `Quick
          test_injector_changes_source;
        Alcotest.test_case "wild store contained on every family" `Quick
          test_wild_store_contained;
        Alcotest.test_case "infinite loop recovered on every family" `Quick
          test_infinite_loop_recovered;
        Alcotest.test_case "lock hog aborted, lock released" `Quick
          test_lock_hog_aborted_and_lock_released;
        Alcotest.test_case "bad call: rejected statically or caught live"
          `Quick test_bad_call_both_variants_appear;
        Alcotest.test_case "undo bomb: abort still completes" `Quick
          test_undo_bomb_still_rolls_back;
        Alcotest.test_case "nested fault: merged state recovered" `Quick
          test_nested_fault_merged_state_recovered;
        Alcotest.test_case "campaign: full product, all invariants" `Slow
          test_campaign_full_product_clean;
        Alcotest.test_case "campaign: same seed, same outcomes" `Quick
          test_campaign_deterministic_across_runs;
      ] );
  ]
