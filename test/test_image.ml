(* Tests for graft images: sealing, signing, tampering, serialisation. *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Image = Vino_misfit.Image
module Sign = Vino_misfit.Sign

let key = "vino-toolchain-key"

let sample_obj () =
  Asm.assemble_exn
    [
      Li (Asm.r1, 10);
      Kcall "mem.alloc";
      St (Asm.r0, Asm.r1, 0);
      Kcall "mem.free";
      Halt;
    ]

let seal_exn obj =
  match Image.seal ~key obj with
  | Ok image -> image
  | Error e -> Alcotest.fail e

let test_seal_verifies () =
  let image = seal_exn (sample_obj ()) in
  Alcotest.(check bool) "verifies with right key" true
    (Image.verify ~key image);
  Alcotest.(check bool) "fails with wrong key" false
    (Image.verify ~key:"evil" image)

let test_sealed_code_is_rewritten () =
  let image = seal_exn (sample_obj ()) in
  let has_sandbox =
    Array.exists
      (function Insn.Sandbox _ -> true | _ -> false)
      image.Image.code
  in
  Alcotest.(check bool) "sandbox instructions present" true has_sandbox

let test_relocations_track_rewritten_indices () =
  let image = seal_exn (sample_obj ()) in
  Alcotest.(check int) "two relocs" 2 (List.length image.Image.relocs);
  List.iter
    (fun { Asm.index; name = _ } ->
      match image.Image.code.(index) with
      | Insn.Kcall -1 -> ()
      | i ->
          Alcotest.failf "reloc %d points at %a, not a placeholder" index
            Insn.pp i)
    image.Image.relocs

let test_tampering_detected () =
  let image = seal_exn (sample_obj ()) in
  let tampered = Image.tamper image in
  Alcotest.(check bool) "tampered image fails verification" false
    (Image.verify ~key tampered)

let test_unsafe_seal_skips_sfi () =
  let image = Image.seal_unsafe ~key (sample_obj ()) in
  let has_sandbox =
    Array.exists
      (function Insn.Sandbox _ -> true | _ -> false)
      image.Image.code
  in
  Alcotest.(check bool) "no sandbox instructions" false has_sandbox;
  Alcotest.(check bool) "still signed" true (Image.verify ~key image)

let test_serialise_roundtrip () =
  let image = seal_exn (sample_obj ()) in
  match Image.deserialise (Image.serialise image) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check bool) "code equal" true
        (back.Image.code = image.Image.code);
      Alcotest.(check bool) "relocs equal" true
        (back.Image.relocs = image.Image.relocs);
      Alcotest.(check bool) "still verifies" true (Image.verify ~key back)

let test_deserialise_garbage () =
  (match Image.deserialise [| 1; 2 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short image accepted");
  match Image.deserialise [| 4; 4; 999; 0; 0; 0; 42 |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad opcode accepted"

let test_save_load_roundtrip () =
  let image = seal_exn (sample_obj ()) in
  let path = Filename.temp_file "vino" ".gimg" in
  Image.save image ~path;
  (match Image.load ~path with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check bool) "code equal" true
        (back.Image.code = image.Image.code);
      Alcotest.(check bool) "verifies after disk round trip" true
        (Image.verify ~key back));
  (* corrupt a word on disk: load must reject or verification must fail *)
  let lines =
    In_channel.with_open_text path In_channel.input_lines
  in
  let corrupted =
    List.mapi (fun k l -> if k = 3 then "424242" else l) lines
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) corrupted);
  (match Image.load ~path with
  | Error _ -> ()
  | Ok tampered ->
      Alcotest.(check bool) "tampering caught by verification" false
        (Image.verify ~key tampered));
  Sys.remove path;
  (* garbage files are rejected cleanly *)
  let garbage = Filename.temp_file "vino" ".gimg" in
  Out_channel.with_open_text garbage (fun oc ->
      Out_channel.output_string oc "not an image\n");
  (match Image.load ~path:garbage with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  Sys.remove garbage;
  match Image.load ~path:"/nonexistent/x.gimg" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* ---- proof-carrying images ---- *)

let verifier =
  Vino_verify.Verify.config
    ~entry:[ (1, Vino_verify.Verify.seg_window ()) ]
    ~words:64 ()

let verified_obj () =
  Asm.assemble_exn
    [
      Ld (Asm.r2, Asm.r1, 0);
      Alui (Insn.Add, Asm.r2, Asm.r2, 1);
      St (Asm.r2, Asm.r1, 1);
      Kcall "mem.free";
      Halt;
    ]

let seal_verified_exn obj =
  match Image.seal ~verifier ~key obj with
  | Ok image -> image
  | Error e -> Alcotest.fail e

let test_proof_carried_and_roundtripped () =
  let image = seal_verified_exn (verified_obj ()) in
  let proof =
    match image.Image.proof with
    | Some p -> p
    | None -> Alcotest.fail "verified seal carried no proof"
  in
  Alcotest.(check bool) "some access proven safe" true
    (Vino_verify.Proof.safe_count proof > 0);
  Alcotest.(check int) "safe map covers the rewritten code"
    (Array.length image.Image.code)
    (Vino_verify.Proof.length proof);
  Alcotest.(check bool) "verifies" true (Image.verify ~key image);
  match Image.deserialise (Image.serialise image) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      (match back.Image.proof with
      | Some q ->
          Alcotest.(check bool) "proof equal after roundtrip" true
            (Vino_verify.Proof.equal proof q)
      | None -> Alcotest.fail "roundtrip dropped the proof");
      Alcotest.(check bool) "still verifies after roundtrip" true
        (Image.verify ~key back)

(* A forged certificate — every access marked proven-safe without
   re-sealing — must fail signature verification exactly like tampered
   code: the signature covers the serialised proof. *)
let test_proof_tamper_detected () =
  let image = seal_verified_exn (verified_obj ()) in
  let forged = Image.tamper_proof image in
  Alcotest.(check bool) "inflated certificate fails verification" false
    (Image.verify ~key forged);
  (* proof-less images are unaffected *)
  let plain = seal_exn (sample_obj ()) in
  Alcotest.(check bool) "tamper_proof is identity without a proof" true
    (Image.verify ~key (Image.tamper_proof plain))

let test_signature_sensitivity () =
  (* Any single-word change to the stream must change the digest. *)
  let words = [| 1; 2; 3; 4; 5 |] in
  let base = Sign.digest ~key words in
  Array.iteri
    (fun k _ ->
      let mutated = Array.copy words in
      mutated.(k) <- mutated.(k) + 1;
      Alcotest.(check bool)
        (Printf.sprintf "word %d change detected" k)
        false
        (Sign.equal base (Sign.digest ~key mutated)))
    words

let suite =
  [
    ( "image",
      [
        Alcotest.test_case "seal then verify" `Quick test_seal_verifies;
        Alcotest.test_case "sealed code is SFI-rewritten" `Quick
          test_sealed_code_is_rewritten;
        Alcotest.test_case "relocations track rewritten indices" `Quick
          test_relocations_track_rewritten_indices;
        Alcotest.test_case "tampering detected at verification" `Quick
          test_tampering_detected;
        Alcotest.test_case "unsafe seal skips SFI (bench only)" `Quick
          test_unsafe_seal_skips_sfi;
        Alcotest.test_case "serialise/deserialise round trip" `Quick
          test_serialise_roundtrip;
        Alcotest.test_case "deserialise rejects garbage" `Quick
          test_deserialise_garbage;
        Alcotest.test_case "save/load .gimg round trip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "digest is sensitive to every word" `Quick
          test_signature_sensitivity;
        Alcotest.test_case "proof carried, covering, round-tripped" `Quick
          test_proof_carried_and_roundtripped;
        Alcotest.test_case "forged certificate detected" `Quick
          test_proof_tamper_detected;
      ] );
  ]
