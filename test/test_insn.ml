(* Unit and property tests for the graft instruction set. *)

module Insn = Vino_vm.Insn

let check = Alcotest.(check bool)

let test_eval_cond () =
  check "eq true" true (Insn.eval_cond Eq 3 3);
  check "eq false" false (Insn.eval_cond Eq 3 4);
  check "ne" true (Insn.eval_cond Ne 3 4);
  check "lt" true (Insn.eval_cond Lt (-1) 0);
  check "le eq" true (Insn.eval_cond Le 5 5);
  check "gt" true (Insn.eval_cond Gt 7 2);
  check "ge" false (Insn.eval_cond Ge 1 2)

let test_eval_alu () =
  Alcotest.(check int) "add" 7 (Insn.eval_alu Add 3 4);
  Alcotest.(check int) "sub" (-1) (Insn.eval_alu Sub 3 4);
  Alcotest.(check int) "mul" 12 (Insn.eval_alu Mul 3 4);
  Alcotest.(check int) "div" 3 (Insn.eval_alu Div 13 4);
  Alcotest.(check int) "rem" 1 (Insn.eval_alu Rem 13 4);
  Alcotest.(check int) "and" 0b100 (Insn.eval_alu And 0b110 0b101);
  Alcotest.(check int) "or" 0b111 (Insn.eval_alu Or 0b110 0b101);
  Alcotest.(check int) "xor" 0b011 (Insn.eval_alu Xor 0b110 0b101);
  Alcotest.(check int) "shl" 16 (Insn.eval_alu Shl 1 4);
  Alcotest.(check int) "shr" 2 (Insn.eval_alu Shr 16 3);
  (* shifts are total: out-of-range amounts saturate, negative amounts are
     a no-op (host lsl/asr are unspecified there) *)
  Alcotest.(check int) "shl by word size" 0 (Insn.eval_alu Shl 1 Sys.int_size);
  Alcotest.(check int) "shl by huge amount" 0 (Insn.eval_alu Shl 123 1000);
  Alcotest.(check int) "shr negative operand saturates to -1" (-1)
    (Insn.eval_alu Shr (-8) 100);
  Alcotest.(check int) "shr positive operand saturates to 0" 0
    (Insn.eval_alu Shr 8 100);
  Alcotest.(check int) "negative shl amount is a no-op" 5
    (Insn.eval_alu Shl 5 (-3));
  Alcotest.(check int) "negative shr amount is a no-op" 5
    (Insn.eval_alu Shr 5 (-1));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Insn.eval_alu Div 1 0));
  Alcotest.check_raises "rem by zero" Division_by_zero (fun () ->
      ignore (Insn.eval_alu Rem 1 0))

let test_memory_access_classification () =
  check "ld" true (Insn.is_memory_access (Ld (0, 1, 0)));
  check "st" true (Insn.is_memory_access (St (0, 1, 0)));
  check "push" true (Insn.is_memory_access (Push 3));
  check "pop" true (Insn.is_memory_access (Pop 3));
  check "alu" false (Insn.is_memory_access (Alu (Add, 0, 1, 2)));
  check "sandbox" false (Insn.is_memory_access (Sandbox 3));
  check "kcall" false (Insn.is_memory_access (Kcall 1))

let test_map_targets () =
  let f t = t + 100 in
  (match Insn.map_targets f (Br (Eq, 1, 2, 5)) with
  | Br (Eq, 1, 2, 105) -> ()
  | _ -> Alcotest.fail "Br target not remapped");
  (match Insn.map_targets f (Jmp 7) with
  | Jmp 107 -> ()
  | _ -> Alcotest.fail "Jmp target not remapped");
  (match Insn.map_targets f (Call 0) with
  | Call 100 -> ()
  | _ -> Alcotest.fail "Call target not remapped");
  match Insn.map_targets f (Ld (1, 2, 3)) with
  | Ld (1, 2, 3) -> ()
  | _ -> Alcotest.fail "Ld should be unchanged"

let test_registers_used () =
  Alcotest.(check (list int)) "alu" [ 1; 2; 3 ]
    (Insn.registers_used (Alu (Add, 1, 2, 3)));
  Alcotest.(check (list int)) "halt" [] (Insn.registers_used Halt);
  Alcotest.(check (list int)) "push" [ 9 ] (Insn.registers_used (Push 9))

let test_validate () =
  let ok i =
    match Insn.validate ~program_length:10 i with
    | Ok () -> true
    | Error _ -> false
  in
  check "valid alu" true (ok (Alu (Add, 0, 1, 2)));
  check "register too big" false (ok (Mov (16, 0)));
  check "register negative" false (ok (Mov (-1, 0)));
  check "branch in range" true (ok (Br (Eq, 0, 0, 9)));
  check "branch out of range" false (ok (Br (Eq, 0, 0, 10)));
  check "negative target" false (ok (Jmp (-1)))

let test_pp_total () =
  (* Printing must not raise for any constructor. *)
  let all =
    [
      Insn.Li (0, 1);
      Mov (0, 1);
      Alu (Add, 0, 1, 2);
      Alui (Sub, 0, 1, 2);
      Ld (0, 1, 2);
      St (0, 1, 2);
      Br (Ne, 0, 1, 2);
      Jmp 0;
      Call 0;
      Callr 0;
      Ret;
      Kcall 0;
      Kcallr 0;
      Push 0;
      Pop 0;
      Sandbox 0;
      Checkcall 0;
      Halt;
    ]
  in
  List.iter (fun i -> ignore (Format.asprintf "%a" Insn.pp i)) all;
  ignore (Format.asprintf "%a" Insn.pp_program (Array.of_list all))

let suite =
  [
    ( "insn",
      [
        Alcotest.test_case "eval_cond covers all comparisons" `Quick
          test_eval_cond;
        Alcotest.test_case "eval_alu covers all operators" `Quick test_eval_alu;
        Alcotest.test_case "memory-access classification" `Quick
          test_memory_access_classification;
        Alcotest.test_case "map_targets touches only control flow" `Quick
          test_map_targets;
        Alcotest.test_case "registers_used" `Quick test_registers_used;
        Alcotest.test_case "validate rejects bad registers/targets" `Quick
          test_validate;
        Alcotest.test_case "pretty-printer is total" `Quick test_pp_total;
      ] );
  ]
