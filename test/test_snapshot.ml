(* Tests for crash-consistent kernel snapshots: capture a warmed site,
   mutate it through a full graft lifecycle, restore, and demand the replay
   be indistinguishable from a freshly built kernel. *)

module Engine = Vino_sim.Engine
module Kernel = Vino_core.Kernel
module Txn = Vino_txn.Txn
module Asm = Vino_vm.Asm
module Site = Vino_disaster.Site
module Campaign = Vino_disaster.Campaign

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let seal_install (site : Site.t) source =
  match Asm.assemble source with
  | Error e -> Alcotest.failf "assemble: %s" e
  | Ok obj -> (
      match Kernel.seal site.Site.kernel obj with
      | Error e -> Alcotest.failf "seal: %s" e
      | Ok image -> (
          match site.Site.install image with
          | Error e -> Alcotest.failf "install: %s" e
          | Ok () -> ()))

(* One observable graft lifecycle: install the healthy graft, drive a
   single operation, drain the engine, and report everything a replay
   divergence would show up in. *)
let probe (site : Site.t) =
  seal_install site site.Site.healthy;
  site.Site.drive_once ();
  Kernel.run site.Site.kernel;
  let kernel = site.Site.kernel in
  ( Engine.now kernel.Kernel.engine,
    Txn.commits kernel.Kernel.txn_mgr,
    Txn.aborts kernel.Kernel.txn_mgr,
    !(site.Site.state_cell) )

(* ------------------------- snapshot refusals -------------------------- *)

let test_snapshot_refused_mid_transaction () =
  let site = Site.create Site.Stream_copy in
  let kernel = site.Site.kernel in
  ignore
    (Engine.spawn kernel.Kernel.engine ~name:"parked-txn" (fun () ->
         let (_ : Txn.t) =
           Txn.begin_ kernel.Kernel.txn_mgr ~name:"parked" ()
         in
         (* park forever: the transaction stays live across the drain *)
         Engine.suspend (fun (_ : unit -> unit) -> ())));
  Kernel.run kernel;
  Alcotest.(check int)
    "one live transaction" 1
    (Txn.live kernel.Kernel.txn_mgr);
  match Kernel.snapshot kernel with
  | (_ : Kernel.snap) -> Alcotest.fail "snapshot accepted mid-transaction"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "refusal names the live transaction" true
        (contains msg "mid-transaction")

let test_snapshot_refused_after_run () =
  let site = Site.create Site.Stream_copy in
  let (_ : int * int * int * int) = probe site in
  match Kernel.snapshot site.Site.kernel with
  | (_ : Kernel.snap) -> Alcotest.fail "snapshot accepted a run engine"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "refusal names the run engine" true
        (contains msg "already run")

let test_restore_refused_wrong_kernel () =
  let a = Site.create Site.Stream_copy
  and b = Site.create Site.Stream_copy in
  let snap = Kernel.snapshot a.Site.kernel in
  match Kernel.restore b.Site.kernel snap with
  | () -> Alcotest.fail "restore accepted a foreign snapshot"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "refusal names the owner" true
        (contains msg "different kernel")

(* --------------------------- restore replay --------------------------- *)

let test_restore_after_force_remove () =
  let fresh = Site.create Site.Stream_copy in
  let forked = Site.create Site.Stream_copy in
  let snap = Kernel.snapshot forked.Site.kernel in
  let (_ : int * int * int * int) = probe forked in
  forked.Site.force_remove ();
  (match forked.Site.check_default () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default path broken after removal: %s" e);
  Kernel.restore forked.Site.kernel snap;
  Alcotest.(check bool)
    "no graft installed after restore" false
    (forked.Site.grafted ());
  Alcotest.(check bool)
    "restored replay matches a fresh site" true
    (probe fresh = probe forked)

let test_double_restore () =
  let expected = probe (Site.create Site.Stream_copy) in
  let site = Site.create Site.Stream_copy in
  let snap = Kernel.snapshot site.Site.kernel in
  Kernel.restore site.Site.kernel snap;
  let first = probe site in
  Kernel.restore site.Site.kernel snap;
  let second = probe site in
  Alcotest.(check bool) "first restore replays fresh" true (first = expected);
  Alcotest.(check bool) "second restore replays fresh" true (second = expected)

(* --------------- force_remove clears the pinned flow table ------------ *)

let test_force_remove_clears_flow_pin () =
  List.iter
    (fun family ->
      let site = Site.create family in
      Site.pin_flow_witness site site.Site.healthy;
      Alcotest.(check bool)
        (Site.family_name family ^ ": witness pinned")
        true
        (site.Site.kernel.Kernel.flow_pin <> None);
      site.Site.force_remove ();
      Alcotest.(check bool)
        (Site.family_name family ^ ": pin cleared with the graft")
        true
        (site.Site.kernel.Kernel.flow_pin = None))
    Site.all_families

(* ------------------------- forked campaigns --------------------------- *)

(* The tentpole contract, as a property: for any campaign seed and length,
   trials forked from a warmed snapshot produce the byte-identical report
   a fresh-site-per-trial campaign does — every fingerprint (which folds
   in virtual time and txn/lock/audit counters) included. *)
let prop_forked_campaign_equals_fresh =
  QCheck2.Test.make ~name:"forked campaign = fresh campaign (any seed/count)"
    ~count:6
    QCheck2.Gen.(pair (int_range 0 999) (int_range 1 10))
    (fun (seed, count) ->
      Campaign.run ~check_determinism:false ~fork:true ~seed ~count ()
      = Campaign.run ~check_determinism:false ~fork:false ~seed ~count ())

let test_recheck_sampling_equivalent () =
  let run recheck_every = Campaign.run ~recheck_every ~seed:11 ~count:12 () in
  let every = run 1 in
  Alcotest.(check bool) "campaign clean" true (Campaign.ok every);
  Alcotest.(check bool) "sampled recheck, same report" true (run 3 = every);
  Alcotest.(check bool) "disabled recheck, same report" true (run 0 = every)

let test_snapshot_rollback_strategy () =
  let run fork =
    Campaign.run ~check_determinism:false ~fork
      ~strategy:Kernel.Snapshot_rollback ~seed:4 ~count:10 ()
  in
  let forked = run true in
  Alcotest.(check bool)
    "forked = fresh under snapshot-rollback" true
    (forked = run false);
  Alcotest.(check bool) "campaign clean" true (Campaign.ok forked);
  let txn =
    Campaign.run ~check_determinism:false ~strategy:Kernel.Txn_undo ~seed:4
      ~count:10 ()
  in
  Alcotest.(check bool)
    "cost overlay shifts virtual time" true
    (Campaign.total_vtime forked <> Campaign.total_vtime txn)

let suite =
  [
    ( "snapshot",
      [
        Alcotest.test_case "refused mid-transaction" `Quick
          test_snapshot_refused_mid_transaction;
        Alcotest.test_case "refused once the engine has run" `Quick
          test_snapshot_refused_after_run;
        Alcotest.test_case "restore refuses a foreign snapshot" `Quick
          test_restore_refused_wrong_kernel;
        Alcotest.test_case "restore after force_remove replays fresh" `Quick
          test_restore_after_force_remove;
        Alcotest.test_case "double restore replays fresh twice" `Quick
          test_double_restore;
        Alcotest.test_case "force_remove clears the pinned flow table" `Quick
          test_force_remove_clears_flow_pin;
        QCheck_alcotest.to_alcotest prop_forked_campaign_equals_fresh;
        Alcotest.test_case "recheck sampling leaves the report unchanged"
          `Quick test_recheck_sampling_equivalent;
        Alcotest.test_case "snapshot-rollback strategy: deterministic overlay"
          `Quick test_snapshot_rollback_strategy;
      ] );
  ]
