(* The zero-allocation dispatch PR's txn-side contracts: arena slot
   recycling is physical (the same frame object comes back), frames are
   returned exactly once however the transaction resolved, and the
   handle-batched counters are observationally identical to string
   counters — including across the parallel fan-out. *)

module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Txn = Vino_txn.Txn
module Arena = Vino_txn.Arena
module Rlimit = Vino_txn.Rlimit
module Counters = Vino_trace.Counters
module Trace = Vino_trace.Trace
module Pool = Vino_par.Pool

let fixture ?(tick = 1000) () =
  let e = Engine.create () in
  let wheel = Tick.create e ~tick () in
  let mgr = Txn.create_mgr e ~wheel () in
  (e, wheel, mgr)

let in_process (e : Engine.t) body =
  ignore (Engine.spawn e ~name:"test-body" body);
  Engine.run e;
  match Engine.failures e with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s crashed: %s" name (Printexc.to_string exn)

(* -------------------------------------------------------------------- *)
(* The generic pool                                                      *)
(* -------------------------------------------------------------------- *)

let test_pool_physical_reuse () =
  let pool : int ref Arena.t = Arena.create ~slots:4 () in
  let a = Arena.take pool ~otherwise:(fun () -> ref 1) in
  Alcotest.(check int) "miss builds fresh" 1 (Arena.outstanding pool);
  Arena.put pool a;
  Alcotest.(check int) "returned" 0 (Arena.outstanding pool);
  Alcotest.(check int) "parked" 1 (Arena.retained pool);
  let b = Arena.take pool ~otherwise:(fun () -> ref 2) in
  Alcotest.(check bool) "same slot object comes back" true (a == b);
  Arena.put pool b

let test_pool_capacity_bound () =
  let pool : int ref Arena.t = Arena.create ~slots:2 () in
  let xs = List.init 5 (fun k -> Arena.take pool ~otherwise:(fun () -> ref k)) in
  List.iter (Arena.put pool) xs;
  Alcotest.(check int) "retains at most capacity" 2 (Arena.retained pool);
  Alcotest.(check int) "outstanding balanced" 0 (Arena.outstanding pool)

let test_slots_for_clamps () =
  let slots w = Arena.slots_for (Rlimit.create ~memory_words:w ()) in
  Alcotest.(check int) "small accounts floor at 16" 16 (slots 0);
  Alcotest.(check int) "scales with memory words" 64 (slots (64 * 256));
  Alcotest.(check int) "huge accounts cap at 1024" 1024 (slots max_int)

(* -------------------------------------------------------------------- *)
(* Frame recycling                                                       *)
(* -------------------------------------------------------------------- *)

let test_frame_physical_reuse () =
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let t1 = Txn.begin_ mgr ~name:"first" () in
      (match Txn.commit t1 with Ok () -> () | Error r -> Alcotest.fail r);
      Txn.recycle t1;
      Alcotest.(check int) "one frame parked" 1 (Txn.frames_retained mgr);
      let t2 = Txn.begin_ mgr ~name:"second" () in
      Alcotest.(check bool) "same frame object reused" true (t1 == t2);
      Alcotest.(check string) "reinitialized name" "second" (Txn.name t2);
      Alcotest.(check bool) "reinitialized state" true (Txn.is_active t2);
      Alcotest.(check int) "no undo leaks across reuse" 0 (Txn.undo_depth t2);
      match Txn.commit t2 with
      | Ok () -> Txn.recycle t2
      | Error r -> Alcotest.fail r)

let test_nested_abort_exactly_once () =
  let e, _, mgr = fixture () in
  let cell = ref 0 in
  in_process e (fun () ->
      let parent = Txn.begin_ mgr ~name:"parent" () in
      let child = Txn.begin_ mgr ~parent ~name:"child" () in
      Txn.push_undo child ~label:"undo-child" (fun () -> incr cell);
      Txn.abort child ~reason:"disaster";
      Alcotest.(check int) "child undo replayed once" 1 !cell;
      Txn.recycle child;
      Txn.recycle child;
      (* idempotent: the double recycle must not double-park the frame *)
      Alcotest.(check int) "child parked exactly once" 1
        (Txn.frames_retained mgr);
      Alcotest.(check int) "parent still outstanding" 1
        (Txn.frames_outstanding mgr);
      (match Txn.commit parent with
      | Ok () -> ()
      | Error r -> Alcotest.fail r);
      Txn.recycle parent;
      Alcotest.(check int) "all frames returned" 0
        (Txn.frames_outstanding mgr));
  let e2, _, mgr2 = fixture () in
  in_process e2 (fun () ->
      let t = Txn.begin_ mgr2 ~name:"live" () in
      (match Txn.recycle t with
      | () -> Alcotest.fail "recycling an active frame must be refused"
      | exception Invalid_argument _ -> ());
      match Txn.commit t with
      | Ok () -> Txn.recycle t
      | Error r -> Alcotest.fail r)

(* A recycled frame must not leak state from its previous life even
   when that life ended in an abort with pending undo entries. *)
let test_recycle_after_abort_is_clean () =
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"doomed" () in
      Txn.push_undo t ~label:"u1" (fun () -> ());
      Txn.push_undo t ~label:"u2" (fun () -> ());
      Txn.abort t ~reason:"quota";
      Txn.recycle t;
      let fresh = Txn.begin_ mgr ~name:"clean" () in
      Alcotest.(check bool) "frame reused" true (t == fresh);
      Alcotest.(check int) "no inherited undo entries" 0
        (Txn.undo_depth fresh);
      Alcotest.(check (option string)) "no inherited abort request" None
        (Txn.abort_requested fresh);
      match Txn.commit fresh with
      | Ok () -> Txn.recycle fresh
      | Error r -> Alcotest.fail r)

(* -------------------------------------------------------------------- *)
(* Handle counters                                                       *)
(* -------------------------------------------------------------------- *)

(* Same interleaved increments through handles and strings must sum
   into one counter per name, indistinguishable from strings alone. *)
let prop_handles_equal_strings =
  let open QCheck2 in
  let gen =
    Gen.(
      list_size (int_range 0 200)
        (triple (int_range 0 4) (int_range 0 50) bool))
  in
  Test.make ~name:"handle and string increments are indistinguishable"
    ~count:200 gen (fun ops ->
      let names = [| "a.x"; "a.y"; "b.x"; "b.y"; "c.z" |] in
      let handles = Array.map Counters.handle names in
      let via_handles = Counters.create () in
      let via_strings = Counters.create () in
      List.iter
        (fun (i, by, use_handle) ->
          if use_handle then Counters.add_h via_handles handles.(i) by
          else Counters.incr via_handles ~by names.(i);
          Counters.incr via_strings ~by names.(i))
        ops;
      Counters.snapshot via_handles = Counters.snapshot via_strings)

let test_handle_interning () =
  let h1 = Counters.handle "intern.same" in
  let h2 = Counters.handle "intern.same" in
  Alcotest.(check bool) "idempotent" true (h1 = h2);
  Alcotest.(check string) "name round-trips" "intern.same"
    (Counters.handle_name h1);
  let t = Counters.create () in
  Counters.incr_h t h1;
  Counters.add_h t h2 4;
  Counters.incr t ~by:2 "intern.same";
  Alcotest.(check int) "handle and string bumps sum" 7
    (Counters.value t "intern.same");
  Alcotest.check_raises "negative add_h refused"
    (Invalid_argument "Counters.add_h: counters are monotonic") (fun () ->
      Counters.add_h t h1 (-1))

(* Handle-batched counters across the parallel fan-out: worker sinks
   absorb into the caller's in item order, so -j 4 must reproduce the
   serial snapshot exactly. *)
let scoped_handle_counters pool =
  let h_work = Counters.handle "arena.work" in
  let h_items = Counters.handle "arena.items" in
  let sink = Trace.create () in
  let out =
    Trace.with_t sink (fun () ->
        Pool.map_scoped ?pool
          (fun k ->
            Trace.add_h h_work k;
            Trace.incr_h h_items;
            Trace.incr "arena.mixed";
            k * 3)
          (List.init 25 Fun.id))
  in
  (out, Trace.counters sink)

let test_handles_parallel_identical () =
  let serial_out, serial_ctrs = scoped_handle_counters None in
  let pool = Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let par_out, par_ctrs = scoped_handle_counters (Some pool) in
      Alcotest.(check (list int)) "same results" serial_out par_out;
      Alcotest.(check (list (pair string int)))
        "same counters at -j 4 vs -j 1" serial_ctrs par_ctrs)

let suite =
  [
    ( "arena",
      [
        Alcotest.test_case "pool hands the same slot object back" `Quick
          test_pool_physical_reuse;
        Alcotest.test_case "pool retention bounded by capacity" `Quick
          test_pool_capacity_bound;
        Alcotest.test_case "slots_for clamps to [16, 1024]" `Quick
          test_slots_for_clamps;
        Alcotest.test_case "txn frame physically reused" `Quick
          test_frame_physical_reuse;
        Alcotest.test_case "nested abort returns frame exactly once" `Quick
          test_nested_abort_exactly_once;
        Alcotest.test_case "recycled abort frame starts clean" `Quick
          test_recycle_after_abort_is_clean;
        QCheck_alcotest.to_alcotest prop_handles_equal_strings;
        Alcotest.test_case "handle interning and mixed bumps" `Quick
          test_handle_interning;
        Alcotest.test_case "handle counters identical across -j" `Quick
          test_handles_parallel_identical;
      ] );
  ]
