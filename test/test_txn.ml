(* Tests for the kernel transaction system: begin/commit/abort, nesting,
   two-phase locking, asynchronous abort, deadlock breaking. *)

module Engine = Vino_sim.Engine
module Tick = Vino_sim.Tick
module Lock = Vino_txn.Lock
module Lock_policy = Vino_txn.Lock_policy
module Txn = Vino_txn.Txn

let fixture ?(tick = 1000) () =
  let e = Engine.create () in
  let wheel = Tick.create e ~tick () in
  let mgr = Txn.create_mgr e ~wheel () in
  (e, wheel, mgr)

(* Run [body] inside one engine process, draining the engine, and assert no
   process crashed. *)
let in_process (e : Engine.t) body =
  ignore (Engine.spawn e ~name:"test-body" body);
  Engine.run e;
  match Engine.failures e with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s crashed: %s" name (Printexc.to_string exn)

let test_commit_discards_undo () =
  let e, _, mgr = fixture () in
  let cell = ref 0 in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"t" () in
      Txn.push_undo t ~label:"restore" (fun () -> cell := -1);
      cell := 42;
      (match Txn.commit t with
      | Ok () -> ()
      | Error r -> Alcotest.failf "commit failed: %s" r);
      Alcotest.(check int) "committed state kept" 42 !cell;
      Alcotest.(check bool) "state" true (Txn.state t = Txn.Committed))

let test_abort_replays_undo () =
  let e, _, mgr = fixture () in
  let cell = ref 7 in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"t" () in
      let old = !cell in
      Txn.push_undo t ~label:"restore" (fun () -> cell := old);
      cell := 99;
      Txn.abort t ~reason:"test abort";
      Alcotest.(check int) "state restored" 7 !cell;
      match Txn.state t with
      | Txn.Aborted "test abort" -> ()
      | _ -> Alcotest.fail "wrong state")

let test_request_abort_wins_at_commit () =
  let e, _, mgr = fixture () in
  let cell = ref 0 in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"t" () in
      Txn.push_undo t ~label:"restore" (fun () -> cell := 0);
      cell := 5;
      Txn.request_abort t "resource hog";
      Txn.request_abort t "second request loses";
      match Txn.commit t with
      | Ok () -> Alcotest.fail "commit should have aborted"
      | Error reason ->
          Alcotest.(check string) "first reason wins" "resource hog" reason;
          Alcotest.(check int) "undone" 0 !cell)

let test_nested_commit_merges () =
  let e, _, mgr = fixture () in
  let cell = ref 1 in
  in_process e (fun () ->
      let p = Txn.begin_ mgr ~name:"parent" () in
      let old_p = !cell in
      Txn.push_undo p ~label:"parent-write" (fun () -> cell := old_p);
      cell := 2;
      let c = Txn.begin_ mgr ~parent:p ~name:"child" () in
      let old_c = !cell in
      Txn.push_undo c ~label:"child-write" (fun () -> cell := old_c);
      cell := 3;
      (match Txn.commit c with
      | Ok () -> ()
      | Error r -> Alcotest.failf "child commit failed: %s" r);
      Alcotest.(check int) "parent inherited child undo" 2 (Txn.undo_depth p);
      (* parent aborts after child committed: child's work must roll back *)
      Txn.abort p ~reason:"parent abort";
      Alcotest.(check int) "everything undone" 1 !cell)

let test_nested_abort_spares_parent () =
  let e, _, mgr = fixture () in
  let cell = ref 1 in
  in_process e (fun () ->
      let p = Txn.begin_ mgr ~name:"parent" () in
      let old_p = !cell in
      Txn.push_undo p ~label:"parent-write" (fun () -> cell := old_p);
      cell := 2;
      let c = Txn.begin_ mgr ~parent:p ~name:"child" () in
      let old_c = !cell in
      Txn.push_undo c ~label:"child-write" (fun () -> cell := old_c);
      cell := 3;
      Txn.abort c ~reason:"child failed";
      Alcotest.(check int) "child undone, parent intact" 2 !cell;
      Alcotest.(check bool) "parent still active" true (Txn.is_active p);
      (match Txn.commit p with
      | Ok () -> ()
      | Error r -> Alcotest.failf "parent commit failed: %s" r);
      Alcotest.(check int) "parent result survives" 2 !cell)

let test_two_phase_locking () =
  (* A lock acquired under a transaction is not released until commit. *)
  let e, wheel, mgr = fixture () in
  let lock = Lock.create e ~wheel ~name:"res" () in
  let observed_during = ref (-1) in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"t" () in
      (match Txn.with_lock t lock Exclusive (fun () -> ()) with
      | Ok () -> ()
      | Error r -> Alcotest.fail r);
      (* body done, but 2PL must still hold the lock *)
      observed_during := List.length (Lock.holders lock);
      (match Txn.commit t with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check int) "held after body" 1 !observed_during;
      Alcotest.(check int) "released at commit" 0
        (List.length (Lock.holders lock)))

let test_abort_releases_locks () =
  let e, wheel, mgr = fixture () in
  let lock = Lock.create e ~wheel ~name:"res" () in
  in_process e (fun () ->
      let t = Txn.begin_ mgr ~name:"t" () in
      (match Txn.acquire_lock t lock Exclusive with
      | Ok () -> ()
      | Error r -> Alcotest.fail r);
      Txn.abort t ~reason:"die";
      Alcotest.(check int) "released at abort" 0
        (List.length (Lock.holders lock)))

let test_nested_locks_move_to_parent () =
  let e, wheel, mgr = fixture () in
  let lock = Lock.create e ~wheel ~name:"res" () in
  in_process e (fun () ->
      let p = Txn.begin_ mgr ~name:"p" () in
      let c = Txn.begin_ mgr ~parent:p ~name:"c" () in
      (match Txn.acquire_lock c lock Exclusive with
      | Ok () -> ()
      | Error r -> Alcotest.fail r);
      (match Txn.commit c with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check int) "parent now holds the lock" 1 (Txn.locks_held p);
      Alcotest.(check int) "still held" 1 (List.length (Lock.holders lock));
      (match Txn.commit p with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check int) "released at top-level commit" 0
        (List.length (Lock.holders lock)))

let test_lock_timeout_aborts_holding_txn () =
  (* Full paper scenario: a graft transaction holds a contested lock and
     spins; the waiter's timeout flags the transaction; the hog notices at
     its next poll point, aborts, and the waiter proceeds. *)
  let e, wheel, mgr = fixture ~tick:100 () in
  let lock = Lock.create e ~wheel ~timeout:1_000 ~name:"resourceA" () in
  let cell = ref 0 in
  let hog_aborted = ref false in
  let victim_ran = ref false in
  ignore
    (Engine.spawn e ~name:"hog" (fun () ->
         let t = Txn.begin_ mgr ~name:"hog-txn" () in
         (match Txn.acquire_lock t lock Exclusive with
         | Ok () -> ()
         | Error r -> Alcotest.fail r);
         Txn.push_undo t ~label:"undo-write" (fun () -> cell := 0);
         cell := 666;
         (* lock(resourceA); while (1); — §2.2's malicious fragment,
            modelled as polling compute slices *)
         let rec spin () =
           match Txn.poll t () with
           | Some reason ->
               Txn.abort t ~reason;
               hog_aborted := true
           | None ->
               Engine.delay 200;
               spin ()
         in
         spin ()));
  ignore
    (Engine.spawn e ~name:"victim" (fun () ->
         Engine.delay 50;
         let t = Txn.begin_ mgr ~name:"victim-txn" () in
         (match Txn.acquire_lock t lock Exclusive with
         | Ok () -> ()
         | Error r -> Alcotest.failf "victim gave up: %s" r);
         victim_ran := true;
         match Txn.commit t with
         | Ok () -> ()
         | Error r -> Alcotest.fail r));
  Engine.run e;
  Alcotest.(check (list string)) "no crashes" []
    (List.map fst (Engine.failures e));
  Alcotest.(check bool) "hog aborted" true !hog_aborted;
  Alcotest.(check bool) "victim made progress (Rule 9)" true !victim_ran;
  Alcotest.(check int) "hog's write undone" 0 !cell

let test_deadlock_broken_by_timeout () =
  (* A-B deadlock: both in transactions; a lock timeout aborts one and the
     other completes. "Time-out based locking also provides an implicit
     mechanism for breaking deadlocks." *)
  let e, wheel, mgr = fixture ~tick:100 () in
  let l1 = Lock.create e ~wheel ~timeout:1_000 ~name:"L1" () in
  let l2 = Lock.create e ~wheel ~timeout:1_000 ~name:"L2" () in
  let completed = ref [] in
  let contender name first second start =
    ignore
      (Engine.spawn e ~name (fun () ->
           Engine.delay start;
           let t = Txn.begin_ mgr ~name () in
           let finish = function
             | Ok () -> (
                 match Txn.commit t with
                 | Ok () -> completed := name :: !completed
                 | Error _ -> ())
             | Error reason -> Txn.abort t ~reason
           in
           match Txn.acquire_lock t first Exclusive with
           | Error reason -> Txn.abort t ~reason
           | Ok () ->
               Engine.delay 300;
               finish (Txn.acquire_lock t second Exclusive)))
  in
  contender "A" l1 l2 0;
  contender "B" l2 l1 10;
  Engine.run e;
  Alcotest.(check (list string)) "no crashes" []
    (List.map fst (Engine.failures e));
  Alcotest.(check bool) "at least one completed" true
    (List.length !completed >= 1);
  Alcotest.(check int) "no lock leaked (L1)" 0
    (List.length (Lock.holders l1));
  Alcotest.(check int) "no lock leaked (L2)" 0
    (List.length (Lock.holders l2));
  Alcotest.(check (list string)) "nothing left blocked" [] (Engine.blocked e)

let test_poll_sees_ancestor_abort () =
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let p = Txn.begin_ mgr ~name:"p" () in
      let c = Txn.begin_ mgr ~parent:p ~name:"c" () in
      Alcotest.(check bool) "clean poll" true (Txn.poll c () = None);
      Txn.request_abort p "parent doomed";
      (match Txn.poll c () with
      | Some "parent doomed" -> ()
      | _ -> Alcotest.fail "child poll must see ancestor abort request");
      (* child commit is forced into abort *)
      (match Txn.commit c with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "child commit should fail");
      match Txn.commit p with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "parent commit should fail")

let test_manager_counters () =
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let a = Txn.begin_ mgr ~name:"a" () in
      let b = Txn.begin_ mgr ~name:"b" () in
      ignore (Txn.commit a);
      Txn.abort b ~reason:"x";
      Alcotest.(check int) "begins" 2 (Txn.begins mgr);
      Alcotest.(check int) "commits" 1 (Txn.commits mgr);
      Alcotest.(check int) "aborts" 1 (Txn.aborts mgr);
      Alcotest.(check int) "live" 0 (Txn.live mgr))

let test_deferred_deletes () =
  (* §6: deletes are delayed until the transaction's fate is known — run at
     top-level commit, dropped on abort, merged through nested commits. *)
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let deleted = ref [] in
      let t1 = Txn.begin_ mgr ~name:"t1" () in
      Txn.defer t1 (fun () -> deleted := "obj1" :: !deleted);
      Alcotest.(check (list string)) "not yet deleted" [] !deleted;
      (match Txn.commit t1 with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check (list string)) "deleted at commit" [ "obj1" ] !deleted;
      let t2 = Txn.begin_ mgr ~name:"t2" () in
      Txn.defer t2 (fun () -> deleted := "obj2" :: !deleted);
      Txn.abort t2 ~reason:"x";
      Alcotest.(check (list string)) "abort drops the delete" [ "obj1" ]
        !deleted;
      let p = Txn.begin_ mgr ~name:"p" () in
      let c = Txn.begin_ mgr ~parent:p ~name:"c" () in
      Txn.defer c (fun () -> deleted := "obj3" :: !deleted);
      (match Txn.commit c with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check (list string)) "nested commit defers to parent"
        [ "obj1" ] !deleted;
      (match Txn.commit p with Ok () -> () | Error r -> Alcotest.fail r);
      Alcotest.(check (list string)) "runs at top-level commit"
        [ "obj3"; "obj1" ] !deleted)

let test_merged_lock_timeout_aborts_parent () =
  (* Regression: a nested commit merges its locks into the parent, but the
     lock manager's held record used to keep the *child's* owner — whose
     [request_abort] is a no-op once the child is resolved. A waiter's
     time-out then aborted nobody and the waiter starved behind a holder it
     believed abortable. The merged lock must be re-pointed at the parent
     so the time-out aborts the transaction that actually holds it. *)
  let e, wheel, mgr = fixture ~tick:100 () in
  let lock = Lock.create e ~wheel ~timeout:1_000 ~name:"merged" () in
  let parent_aborted = ref false and victim_ran = ref false in
  ignore
    (Engine.spawn e ~name:"nester" (fun () ->
         let p = Txn.begin_ mgr ~name:"p" () in
         let c = Txn.begin_ mgr ~parent:p ~name:"c" () in
         (match Txn.acquire_lock c lock Exclusive with
         | Ok () -> ()
         | Error r -> Alcotest.fail r);
         (match Txn.commit c with Ok () -> () | Error r -> Alcotest.fail r);
         (* p now holds the lock; spin at poll points like a graft. *)
         let rec spin () =
           match Txn.poll p () with
           | Some reason ->
               Txn.abort p ~reason;
               parent_aborted := true
           | None ->
               Engine.delay 200;
               spin ()
         in
         spin ()));
  ignore
    (Engine.spawn e ~name:"victim" (fun () ->
         (* Long enough for both begins and the nested commit to finish:
            the parent must already hold the merged lock when we contend. *)
         Engine.delay 15_000;
         let t = Txn.begin_ mgr ~name:"victim" () in
         match Txn.acquire_lock t lock Exclusive with
         | Ok () ->
             victim_ran := true;
             ignore (Txn.commit t)
         | Error r -> Alcotest.failf "victim gave up: %s" r));
  Engine.run e;
  Alcotest.(check (list string)) "no crashes" []
    (List.map fst (Engine.failures e));
  Alcotest.(check bool) "time-out aborted the parent" true !parent_aborted;
  Alcotest.(check bool) "victim made progress" true !victim_ran;
  Alcotest.(check int) "lock free" 0 (List.length (Lock.holders lock))

let test_abort_survives_raising_undo_entry () =
  (* Regression (fault mid-undo): an undo entry that raises must not stop
     the replay — later entries still run, the lock still gets released,
     the failure is counted, and the transaction resolves. *)
  let e, wheel, mgr = fixture () in
  let lock = Lock.create e ~wheel ~name:"res" () in
  in_process e (fun () ->
      let cell = ref 0 in
      let t = Txn.begin_ mgr ~name:"t" () in
      (match Txn.acquire_lock t lock Exclusive with
      | Ok () -> ()
      | Error r -> Alcotest.fail r);
      Txn.push_undo t ~label:"restore" (fun () -> cell := 0);
      cell := 1;
      Txn.push_undo t ~label:"bomb" (fun () -> failwith "undo bomb");
      Txn.push_undo t ~label:"later" (fun () -> cell := !cell + 10);
      Txn.abort t ~reason:"die";
      Alcotest.(check int) "non-raising entries replayed around the bomb" 0
        !cell;
      Alcotest.(check int) "failure recorded" 1 (Txn.undo_failures mgr);
      Alcotest.(check int) "undo logs empty" 0 (Txn.undo_live mgr);
      Alcotest.(check int) "lock released despite the bomb" 0
        (List.length (Lock.holders lock));
      match Txn.state t with
      | Txn.Aborted _ -> ()
      | _ -> Alcotest.fail "transaction did not resolve")

let test_deferred_failure_still_commits () =
  (* Regression: deferred actions used to run *before* the transaction was
     marked committed and without exception protection — one raising
     action left the transaction permanently Active (leaking it from the
     manager's live count) and skipped the rest. *)
  let e, _, mgr = fixture () in
  in_process e (fun () ->
      let ran = ref false in
      let t = Txn.begin_ mgr ~name:"t" () in
      Txn.defer t (fun () -> failwith "deferred bomb");
      Txn.defer t (fun () -> ran := true);
      (match Txn.commit t with Ok () -> () | Error r -> Alcotest.fail r);
      (match Txn.state t with
      | Txn.Committed -> ()
      | _ -> Alcotest.fail "not committed");
      Alcotest.(check int) "failure recorded" 1 (Txn.deferred_failures mgr);
      Alcotest.(check bool) "later deferred actions still ran" true !ran;
      Alcotest.(check int) "nothing live" 0 (Txn.live mgr))

let test_lock_timeout_through_nested_txn_chain () =
  (* Coverage: the waiter times out while the lock is held by a *child*
     that is still active — the child's own owner must be the abort target
     and the parent must survive the child's abort. *)
  let e, wheel, mgr = fixture ~tick:100 () in
  let lock = Lock.create e ~wheel ~timeout:1_000 ~name:"chain" () in
  let child_aborted = ref false and parent_committed = ref false in
  ignore
    (Engine.spawn e ~name:"nester" (fun () ->
         let p = Txn.begin_ mgr ~name:"p" () in
         let c = Txn.begin_ mgr ~parent:p ~name:"c" () in
         (match Txn.acquire_lock c lock Exclusive with
         | Ok () -> ()
         | Error r -> Alcotest.fail r);
         let rec spin () =
           match Txn.poll c () with
           | Some reason ->
               Txn.abort c ~reason;
               child_aborted := true
           | None ->
               Engine.delay 200;
               spin ()
         in
         spin ();
         (match Txn.commit p with
         | Ok () -> parent_committed := true
         | Error r -> Alcotest.fail r)));
  ignore
    (Engine.spawn e ~name:"victim" (fun () ->
         (* Contend only once the child certainly holds the lock. *)
         Engine.delay 15_000;
         let t = Txn.begin_ mgr ~name:"victim" () in
         match Txn.acquire_lock t lock Exclusive with
         | Ok () -> ignore (Txn.commit t)
         | Error r -> Alcotest.failf "victim gave up: %s" r));
  Engine.run e;
  Alcotest.(check (list string)) "no crashes" []
    (List.map fst (Engine.failures e));
  Alcotest.(check bool) "child aborted by the time-out" true !child_aborted;
  Alcotest.(check bool) "parent unharmed" true !parent_committed;
  Alcotest.(check int) "nothing live" 0 (Txn.live mgr)

let test_abort_costs_scale_with_locks () =
  (* §4.5: abort time = abort overhead + 10us per lock + undo cost. *)
  let cost_with_locks n =
    let e, wheel, mgr = fixture () in
    let locks =
      List.init n (fun k ->
          Lock.create e ~wheel ~name:(Printf.sprintf "l%d" k) ())
    in
    let measured = ref 0 in
    in_process e (fun () ->
        let t = Txn.begin_ mgr ~name:"t" () in
        List.iter
          (fun l ->
            match Txn.acquire_lock t l Exclusive with
            | Ok () -> ()
            | Error r -> Alcotest.fail r)
          locks;
        let before = Engine.now e in
        Txn.abort t ~reason:"measure";
        measured := Engine.now e - before);
    !measured
  in
  let c0 = cost_with_locks 0 in
  let c4 = cost_with_locks 4 in
  let c8 = cost_with_locks 8 in
  let per_lock_4 = (c4 - c0) / 4 and per_lock_8 = (c8 - c0) / 8 in
  Alcotest.(check int) "linear in lock count" per_lock_4 per_lock_8;
  Alcotest.(check int) "10us per lock"
    (Vino_vm.Costs.cycles_of_us 10.)
    per_lock_4

(* Model-based property: a random program of nested begins, guarded
   writes, commits and aborts over a register file must leave exactly the
   state a snapshot-stack model predicts. *)
let prop_nested_txn_model =
  let open QCheck2 in
  let op_gen =
    Gen.(
      frequency
        [
          (4, map2 (fun s v -> `Write (s, v)) (int_range 0 5) (int_range 0 99));
          (2, return `Begin);
          (2, return `Commit);
          (1, return `Abort);
        ])
  in
  Test.make ~name:"nested transactions match the snapshot model" ~count:150
    Gen.(list_size (int_range 0 40) op_gen)
    (fun ops ->
      let e, _, mgr = fixture () in
      let regs = Array.make 6 0 in
      (* model: stack of snapshots, innermost last *)
      let model = Array.make 6 0 in
      let snapshots = ref [] in
      let result = ref true in
      ignore
        (Engine.spawn e (fun () ->
             let root = Txn.begin_ mgr ~name:"root" () in
             snapshots := [ Array.copy model ];
             let stack = ref [ root ] in
             let current () = List.hd !stack in
             List.iter
               (fun op ->
                 match op with
                 | `Write (slot, v) ->
                     let old = regs.(slot) in
                     Txn.push_undo (current ()) ~label:"w" (fun () ->
                         regs.(slot) <- old);
                     regs.(slot) <- v;
                     model.(slot) <- v
                 | `Begin ->
                     let child =
                       Txn.begin_ mgr ~parent:(current ()) ~name:"c" ()
                     in
                     stack := child :: !stack;
                     snapshots := Array.copy model :: !snapshots
                 | `Commit -> (
                     match (!stack, !snapshots) with
                     | t :: (_ :: _ as rest), _ :: srest ->
                         (match Txn.commit t with
                         | Ok () -> ()
                         | Error _ -> result := false);
                         stack := rest;
                         (* committed into parent: keep current model *)
                         snapshots := srest
                     | _ -> () (* never commit the root mid-run *))
                 | `Abort -> (
                     match (!stack, !snapshots) with
                     | t :: (_ :: _ as rest), snap :: srest ->
                         Txn.abort t ~reason:"model";
                         stack := rest;
                         Array.blit snap 0 model 0 6;
                         snapshots := srest
                     | _ -> ()))
               ops;
             (* close every remaining level by committing *)
             List.iter
               (fun t ->
                 match Txn.commit t with
                 | Ok () -> ()
                 | Error _ -> result := false)
               !stack));
      Engine.run e;
      Engine.failures e = [] && !result && regs = model)

(* Property: with the fifo-fair policy, exclusive locks are granted in
   request-arrival order. *)
let prop_fifo_grant_order =
  QCheck2.Test.make ~name:"fifo-fair grants exclusive in arrival order"
    ~count:60
    QCheck2.Gen.(list_size (int_range 1 10) (int_range 0 300))
    (fun starts ->
      let e, wheel, _ = fixture () in
      let lock =
        Lock.create e ~wheel ~policy:Lock_policy.fifo_fair ~timeout:100_000
          ~name:"fifo" ()
      in
      (* distinct, increasing start times preserve arrival order *)
      let starts = List.sort compare starts in
      let starts =
        List.mapi (fun k s -> s + (k * 400) (* strictly separated *)) starts
      in
      let grants = ref [] in
      List.iteri
        (fun k start ->
          ignore
            (Engine.spawn e (fun () ->
                 Engine.delay start;
                 match
                   Lock.acquire lock Exclusive
                     (Lock.plain_owner (string_of_int k))
                     ()
                 with
                 | Lock.Granted held ->
                     grants := k :: !grants;
                     Engine.delay 350;
                     Lock.release held
                 | Lock.Gave_up _ -> ())))
        starts;
      Engine.run e;
      List.rev !grants = List.init (List.length starts) (fun k -> k))

let suite =
  [
    ( "txn",
      [
        Alcotest.test_case "commit keeps state" `Quick test_commit_discards_undo;
        Alcotest.test_case "abort replays undo" `Quick test_abort_replays_undo;
        Alcotest.test_case "async abort request honoured at commit" `Quick
          test_request_abort_wins_at_commit;
        Alcotest.test_case "nested commit merges into parent" `Quick
          test_nested_commit_merges;
        Alcotest.test_case "nested abort spares parent" `Quick
          test_nested_abort_spares_parent;
        Alcotest.test_case "two-phase locking holds to commit" `Quick
          test_two_phase_locking;
        Alcotest.test_case "abort releases locks" `Quick
          test_abort_releases_locks;
        Alcotest.test_case "nested commit moves locks to parent" `Quick
          test_nested_locks_move_to_parent;
        Alcotest.test_case "lock timeout aborts holding txn (Rule 2/9)"
          `Quick test_lock_timeout_aborts_holding_txn;
        Alcotest.test_case "deadlock broken by lock timeout" `Quick
          test_deadlock_broken_by_timeout;
        Alcotest.test_case "poll sees ancestor abort requests" `Quick
          test_poll_sees_ancestor_abort;
        Alcotest.test_case "manager counters" `Quick test_manager_counters;
        Alcotest.test_case "deferred deletes (§6)" `Quick
          test_deferred_deletes;
        Alcotest.test_case "merged lock re-pointed at parent (regression)"
          `Quick test_merged_lock_timeout_aborts_parent;
        Alcotest.test_case "abort survives raising undo entry (regression)"
          `Quick test_abort_survives_raising_undo_entry;
        Alcotest.test_case "deferred failure still commits (regression)"
          `Quick test_deferred_failure_still_commits;
        Alcotest.test_case "lock timeout through nested txn chain" `Quick
          test_lock_timeout_through_nested_txn_chain;
        Alcotest.test_case "abort cost = base + 10us/lock (§4.5)" `Quick
          test_abort_costs_scale_with_locks;
        QCheck_alcotest.to_alcotest prop_nested_txn_model;
        QCheck_alcotest.to_alcotest prop_fifo_grant_order;
      ] );
  ]
