(* The deterministic domain pool: output must be a pure function of the
   input list, independent of scheduling, and the trace-scoped variant
   must leave the caller's sink identical to a serial run. The pools here
   use more domains than the machine has cores on purpose — determinism
   may not depend on the schedule. *)

module Pool = Vino_par.Pool
module Trace = Vino_trace.Trace

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_map_order () =
  with_pool 4 (fun pool ->
      let items = List.init 200 (fun k -> k - 50) in
      let f x = (x * x) - (3 * x) in
      Alcotest.(check (list int))
        "map ~pool = List.map" (List.map f items)
        (Pool.map ~pool f items);
      Alcotest.(check (list int))
        "repeat batches reuse the pool" (List.map f items)
        (Pool.map ~pool f items))

let test_map_edges () =
  with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map ~pool succ []);
      Alcotest.(check (list int))
        "singleton" [ 8 ]
        (Pool.map ~pool succ [ 7 ]);
      Alcotest.(check (list int))
        "fewer items than domains" [ 1; 2 ]
        (Pool.map ~pool succ [ 0; 1 ]))

exception Boom of int

let test_map_exception () =
  with_pool 4 (fun pool ->
      match
        Pool.map ~pool
          (fun x -> if x mod 10 = 7 then raise (Boom x) else x)
          (List.init 40 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
          Alcotest.(check int) "lowest failing index wins" 7 x)

let test_map_not_reentrant () =
  with_pool 4 (fun pool ->
      match Pool.map ~pool (fun x -> Pool.map ~pool succ [ x ]) [ 1; 2 ] with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let test_shutdown_degrades () =
  let pool = Pool.create ~domains:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "serial after shutdown" [ 2; 3 ]
    (Pool.map ~pool succ [ 1; 2 ])

(* map_scoped under an installed sink must record exactly what a serial
   run records: summed counters and index-ordered spans. *)
let scoped_counters pool =
  let sink = Trace.create () in
  let out =
    Trace.with_t sink (fun () ->
        Pool.map_scoped ?pool
          (fun k ->
            Trace.incr ~by:k "par.work";
            Trace.incr "par.items";
            k)
          (List.init 25 Fun.id))
  in
  (out, Trace.counters sink)

let test_map_scoped_absorb () =
  let serial_out, serial_ctrs = scoped_counters None in
  with_pool 4 (fun pool ->
      let par_out, par_ctrs = scoped_counters (Some pool) in
      Alcotest.(check (list int)) "same results" serial_out par_out;
      Alcotest.(check (list (pair string int)))
        "same counters" serial_ctrs par_ctrs)

(* The PR's hard bar, enforced as a test: every gated table renders to
   byte-identical JSON whether computed serially or fanned out. *)
let render_tables pool =
  let module M = Vino_measure in
  let sink = Trace.create () in
  let rows =
    Trace.with_t sink (fun () ->
        [
          ("table3", M.Sc_readahead.table ~iterations:2 ?pool ());
          ("table6", M.Sc_crypt.table ~iterations:2 ?pool ());
          ("table7", M.Abort_model.table7 ~iterations:2 ?pool ());
          ("disaster", M.Sc_disaster.table ?pool ());
        ])
  in
  String.concat "\n"
    (List.map
       (fun (name, rows) ->
         Vino_trace.Json.to_string
           (M.Table.to_json ~name ~title:name ~counters:(Trace.counters sink)
              rows))
       rows)

let test_tables_byte_identical () =
  let serial = render_tables None in
  let parallel = with_pool 4 (fun pool -> render_tables (Some pool)) in
  Alcotest.(check string) "tables byte-identical at -j 1 vs -j 4" serial
    parallel

let test_campaign_identical () =
  let serial = Vino_disaster.Campaign.run ~seed:7 ~count:10 () in
  let parallel =
    with_pool 4 (fun pool ->
        Vino_disaster.Campaign.run ~pool ~seed:7 ~count:10 ())
  in
  Alcotest.(check bool)
    "campaign records identical at -j 1 vs -j 4" true
    (serial.Vino_disaster.Campaign.records
    = parallel.Vino_disaster.Campaign.records)

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "map preserves input order" `Quick test_map_order;
        Alcotest.test_case "map edge cases" `Quick test_map_edges;
        Alcotest.test_case "lowest-index exception wins" `Quick
          test_map_exception;
        Alcotest.test_case "nested fan-out rejected" `Quick
          test_map_not_reentrant;
        Alcotest.test_case "shutdown degrades to serial" `Quick
          test_shutdown_degrades;
        Alcotest.test_case "map_scoped absorbs into caller sink" `Quick
          test_map_scoped_absorb;
        Alcotest.test_case "tables byte-identical across -j" `Quick
          test_tables_byte_identical;
        Alcotest.test_case "disaster campaign identical across -j" `Quick
          test_campaign_identical;
      ] );
  ]
