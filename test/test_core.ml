(* Integration tests for the grafting core: the install → invoke →
   misbehave → recover lifecycle of Table 1's rules. *)

module Asm = Vino_vm.Asm
module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Engine = Vino_sim.Engine
module Txn = Vino_txn.Txn
module Rlimit = Vino_txn.Rlimit
module Kernel = Vino_core.Kernel
module Kcall = Vino_core.Kcall
module Graft_point = Vino_core.Graft_point
module Event_point = Vino_core.Event_point
module Namespace = Vino_core.Namespace
module Cred = Vino_core.Cred

(* A kernel fixture with a mutable counter guarded by an accessor function
   (with undo), an allocator function governed by resource limits, and two
   non-callable functions (private data / unrecoverable action). *)
type fixture = {
  kernel : Kernel.t;
  counter : int ref;
  secret_id : int;
  adder : (int, int) Graft_point.t;
}

let make_fixture ?watchdog ?budget () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) ~tick:1_000 () in
  let counter = ref 0 in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"counter.incr" (fun ctx ->
        let old = !counter in
        (match ctx.Kcall.txn with
        | Some txn ->
            Txn.push_undo txn ~label:"counter.restore" (fun () ->
                counter := old)
        | None -> ());
        counter := old + Kcall.arg ctx.Kcall.cpu 0;
        Kcall.return ctx.Kcall.cpu !counter;
        Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"mem.alloc" (fun ctx ->
        let words = Kcall.arg ctx.Kcall.cpu 0 in
        match Rlimit.request ctx.Kcall.limits Rlimit.Memory_words words with
        | Error `Denied ->
            Kcall.return ctx.Kcall.cpu 0;
            Kcall.ok
        | Ok () ->
            (match ctx.Kcall.txn with
            | Some txn ->
                Txn.push_undo txn ~label:"mem.release" (fun () ->
                    Rlimit.release ctx.Kcall.limits Rlimit.Memory_words words)
            | None -> ());
            Kcall.return ctx.Kcall.cpu 1;
            Kcall.ok)
  in
  let secret =
    Kernel.register_kcall kernel ~name:"secret.read" ~callable:false
      (fun ctx ->
        Kcall.return ctx.Kcall.cpu 0xC0FFEE;
        Kcall.ok)
  in
  let (_ : Kcall.fn) =
    Kernel.register_kcall kernel ~name:"sys.shutdown" ~callable:false
      (fun _ -> Kcall.abort "shutdown attempted")
  in
  let adder =
    Graft_point.create ~name:"adder.compute" ?watchdog ?budget
      ~default:(fun x -> x + 1)
      ~setup:(fun cpu x -> Cpu.set_reg cpu 1 x)
      ~read_result:(fun cpu _ ->
        let v = Cpu.reg cpu 0 in
        if v >= 0 && v < 1000 then Ok v else Error "result out of range")
      ()
  in
  { kernel; counter; secret_id = secret.Kcall.id; adder }

let seal_exn kernel items =
  match Kernel.seal kernel (Asm.assemble_exn items) with
  | Ok image -> image
  | Error e -> Alcotest.fail e

let in_kernel f =
  let fx = make_fixture () in
  let result = ref None in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine ~name:"test" (fun () ->
         result := Some (f fx)));
  Kernel.run fx.kernel;
  (match Engine.failures fx.kernel.Kernel.engine with
  | [] -> ()
  | (name, exn) :: _ ->
      Alcotest.failf "process %s crashed: %s" name (Printexc.to_string exn));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "test body did not finish"

let user _fx = Cred.user "app" ~limits:(Rlimit.unlimited ())
let install_exn fx ?shared_words ?limits image =
  match
    Graft_point.replace fx.adder fx.kernel ~cred:(user fx) ?shared_words
      ?limits image
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* r0 <- r1 * 2 *)
let doubler_graft : Asm.item list =
  [ Alu (Insn.Add, Asm.r0, Asm.r1, Asm.r1); Ret ]

let test_default_without_graft () =
  in_kernel (fun fx ->
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 5 in
      Alcotest.(check int) "default ran" 6 v;
      Alcotest.(check bool) "not grafted" false (Graft_point.grafted fx.adder))

let test_graft_replaces_function () =
  in_kernel (fun fx ->
      install_exn fx (seal_exn fx.kernel doubler_graft);
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 21 in
      Alcotest.(check int) "graft ran" 42 v;
      Alcotest.(check int) "one graft run" 1 (Graft_point.graft_runs fx.adder);
      Alcotest.(check bool) "still installed" true
        (Graft_point.grafted fx.adder);
      (* a transaction was begun and committed around the invocation *)
      Alcotest.(check int) "one commit" 1 (Txn.commits fx.kernel.Kernel.txn_mgr))

let test_unsigned_code_rejected () =
  in_kernel (fun fx ->
      let obj = Asm.assemble_exn doubler_graft in
      let image = Vino_misfit.Image.seal_unsafe ~key:"wrong-key" obj in
      match Graft_point.replace fx.adder fx.kernel ~cred:(user fx) image with
      | Error msg ->
          Alcotest.(check bool) "mentions signature" true
            (String.length msg > 0)
      | Ok () -> Alcotest.fail "unsigned graft was loaded (Rule 6)")

let test_tampered_code_rejected () =
  in_kernel (fun fx ->
      let image = Vino_misfit.Image.tamper (seal_exn fx.kernel doubler_graft) in
      match Graft_point.replace fx.adder fx.kernel ~cred:(user fx) image with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "tampered graft was loaded (Rule 6)")

let test_linker_rejects_non_callable () =
  in_kernel (fun fx ->
      let image =
        seal_exn fx.kernel [ Kcall "secret.read"; Ret ]
      in
      (match Graft_point.replace fx.adder fx.kernel ~cred:(user fx) image with
      | Error msg ->
          Alcotest.(check bool) "names the function" true
            (String.length msg > 0)
      | Ok () -> Alcotest.fail "call to private-data function linked (Rule 4)");
      let image2 = seal_exn fx.kernel [ Kcall "sys.shutdown"; Ret ] in
      (match Graft_point.replace fx.adder fx.kernel ~cred:(user fx) image2 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "call to shutdown linked (Rule 4)");
      let image3 = seal_exn fx.kernel [ Kcall "no.such.fn"; Ret ] in
      match Graft_point.replace fx.adder fx.kernel ~cred:(user fx) image3 with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "unresolved function linked (Rule 7)")

let test_indirect_call_blocked_at_runtime () =
  in_kernel (fun fx ->
      (* launder the secret function's id through memory so neither the
         linker nor the static verifier can see it (a constant id would be
         rejected at link time): Checkcall must stop it at run time. *)
      let image =
        seal_exn fx.kernel
          [
            Li (Asm.r5, fx.secret_id);
            Li (Asm.r6, 0);
            St (Asm.r5, Asm.r6, 0);
            Ld (Asm.r5, Asm.r6, 0);
            Kcallr Asm.r5;
            Ret;
          ]
      in
      install_exn fx image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 7 in
      Alcotest.(check int) "fell back to default" 8 v;
      Alcotest.(check bool) "graft removed after violation" false
        (Graft_point.grafted fx.adder);
      Alcotest.(check int) "recorded failure" 1
        (Graft_point.graft_failures fx.adder))

let test_wild_store_confined_and_harmless () =
  in_kernel (fun fx ->
      (* store 0xDEAD at kernel word 3, then return r1*2: with SFI this is
         confined to the segment and the graft completes normally. *)
      let image =
        seal_exn fx.kernel
          [
            Li (Asm.r5, 3);
            Li (Asm.r6, 0xDEAD);
            St (Asm.r6, Asm.r5, 0);
            Alu (Insn.Add, Asm.r0, Asm.r1, Asm.r1);
            Ret;
          ]
      in
      install_exn fx image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 10 in
      Alcotest.(check int) "graft result" 20 v;
      Alcotest.(check int) "kernel word 3 untouched (Rule 3)" 0
        (Mem.load fx.kernel.Kernel.mem 3))

let test_infinite_loop_cut_off_and_undone () =
  let fx = make_fixture ~budget:200_000 () in
  let result = ref None in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine (fun () ->
         let image =
           seal_exn fx.kernel
             [
               Li (Asm.r1, 1);
               Kcall "counter.incr";
               Asm.Label "spin";
               Jmp "spin";
             ]
         in
         install_exn fx image;
         result :=
           Some (Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 3)));
  Kernel.run fx.kernel;
  Alcotest.(check (option int)) "default result after cut-off" (Some 4)
    !result;
  Alcotest.(check int) "counter change rolled back (Rule 9)" 0 !(fx.counter);
  Alcotest.(check bool) "graft removed" false (Graft_point.grafted fx.adder);
  Alcotest.(check int) "abort recorded" 1 (Txn.aborts fx.kernel.Kernel.txn_mgr)

let test_fault_rolls_back_kernel_state () =
  in_kernel (fun fx ->
      (* increment the counter through the accessor, then divide by zero *)
      let image =
        seal_exn fx.kernel
          [
            Li (Asm.r1, 5);
            Kcall "counter.incr";
            Li (Asm.r2, 0);
            Alu (Insn.Div, Asm.r0, Asm.r1, Asm.r2);
            Ret;
          ]
      in
      install_exn fx image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 9 in
      Alcotest.(check int) "default result" 10 v;
      Alcotest.(check int) "counter restored by undo (Rule 9)" 0 !(fx.counter))

let test_successful_graft_commits_kernel_state () =
  in_kernel (fun fx ->
      let image =
        seal_exn fx.kernel
          [ Li (Asm.r1, 5); Kcall "counter.incr"; Li (Asm.r0, 5); Ret ]
      in
      install_exn fx image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0 in
      Alcotest.(check int) "graft result" 5 v;
      Alcotest.(check int) "committed counter persists" 5 !(fx.counter))

let test_result_validation_failure () =
  in_kernel (fun fx ->
      let image = seal_exn fx.kernel [ Li (Asm.r0, 9999); Ret ] in
      install_exn fx image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 2 in
      Alcotest.(check int) "default used" 3 v;
      Alcotest.(check bool) "graft removed" false
        (Graft_point.grafted fx.adder);
      match Graft_point.last_failure fx.adder with
      | Some msg ->
          Alcotest.(check bool) "mentions validation" true
            (String.length msg > 0)
      | None -> Alcotest.fail "failure not recorded")

let test_restricted_point_requires_privilege () =
  let kernel = Kernel.create ~mem_words:(1 lsl 16) () in
  let point =
    Graft_point.create ~name:"global.scheduler" ~restricted:true
      ~default:(fun () -> 0)
      ~setup:(fun _ () -> ())
      ~read_result:(fun cpu () -> Ok (Cpu.reg cpu 0))
      ()
  in
  let image =
    match Kernel.seal kernel (Asm.assemble_exn [ Li (Asm.r0, 0); Ret ]) with
    | Ok i -> i
    | Error e -> Alcotest.fail e
  in
  let mallory = Cred.user "mallory" ~limits:(Rlimit.zero ()) in
  (match Graft_point.replace point kernel ~cred:mallory image with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unprivileged user grafted a global policy (Rule 5)");
  match Graft_point.replace point kernel ~cred:Cred.root image with
  | Ok () -> ()
  | Error e -> Alcotest.failf "root should be allowed: %s" e

let test_resource_limits_enforced () =
  in_kernel (fun fx ->
      (* the graft asks for 100 words; returns the allocator's verdict *)
      let image =
        seal_exn fx.kernel [ Li (Asm.r1, 100); Kcall "mem.alloc"; Ret ]
      in
      (* zero limits: denied *)
      install_exn fx ~limits:(Rlimit.zero ()) image;
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0 in
      Alcotest.(check int) "denied with zero limits" 0 v;
      (* installer transfers headroom: granted *)
      let installer = Rlimit.create ~memory_words:1000 () in
      let graft_limits = Rlimit.zero () in
      (match
         Rlimit.transfer ~src:installer ~dst:graft_limits Rlimit.Memory_words
           500
       with
      | Ok () -> ()
      | Error `Denied -> Alcotest.fail "transfer failed");
      install_exn fx ~limits:graft_limits image;
      let v2 = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0 in
      Alcotest.(check int) "granted after transfer" 1 v2;
      Alcotest.(check int) "usage billed to graft account" 100
        (Rlimit.used graft_limits Rlimit.Memory_words))

let test_watchdog_stops_nonreturning_graft () =
  (* §2.5: the page-daemon scenario — a graft that never returns is timed
     out so the system makes forward progress. *)
  let fx = make_fixture ~watchdog:50_000 () in
  let result = ref None in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine (fun () ->
         let image =
           seal_exn fx.kernel [ Asm.Label "spin"; Jmp "spin" ]
         in
         install_exn fx image;
         result :=
           Some (Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 1)));
  Kernel.run fx.kernel;
  Alcotest.(check (option int)) "forward progress (Rule 9)" (Some 2) !result;
  match Graft_point.last_failure fx.adder with
  | Some reason ->
      Alcotest.(check bool) "watchdog named" true
        (String.length reason > 0)
  | None -> Alcotest.fail "no failure recorded"

let test_shared_window () =
  in_kernel (fun fx ->
      (* graft reads word 0 of its shared window and returns it *)
      let image =
        seal_exn fx.kernel
          [ Li (Asm.r5, 0); Ld (Asm.r0, Asm.r5, 0); Ret ]
      in
      (* note: address 0 is sandboxed into the segment, landing on the
         shared window base *)
      install_exn fx ~shared_words:16 image;
      (match Graft_point.shared_base fx.adder with
      | Some base -> Mem.store fx.kernel.Kernel.mem base 123
      | None -> Alcotest.fail "no shared window");
      let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0 in
      Alcotest.(check int) "graft saw application data" 123 v)

let test_namespace_install_flow () =
  (* Figure 1: look up the graft point by name, then replace. *)
  in_kernel (fun fx ->
      let ns = Namespace.create () in
      Namespace.register ns
        (Namespace.of_function_point fx.adder fx.kernel ());
      Alcotest.(check (list string)) "listed" [ "adder.compute" ]
        (Namespace.names ns);
      match Namespace.lookup ns "adder.compute" with
      | None -> Alcotest.fail "lookup failed"
      | Some handle ->
          (match handle.Namespace.install (user fx)
                   (seal_exn fx.kernel doubler_graft)
           with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          Alcotest.(check bool) "grafted via handle" true
            (handle.Namespace.grafted ());
          let v = Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 8 in
          Alcotest.(check int) "handle-installed graft runs" 16 v;
          handle.Namespace.uninstall ();
          Alcotest.(check bool) "uninstalled" false
            (handle.Namespace.grafted ()))

let test_restricted_event_point () =
  let fx = make_fixture () in
  let ep = Event_point.create ~name:"privileged.events" ~restricted:true () in
  let image = seal_exn fx.kernel [ Asm.Li (Asm.r0, 0); Ret ] in
  (match Event_point.add_handler ep fx.kernel ~cred:(user fx) image with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unprivileged handler accepted on restricted point");
  match Event_point.add_handler ep fx.kernel ~cred:Cred.root image with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "root rejected: %s" e

let test_event_point_handlers_run_in_order () =
  let fx = make_fixture () in
  let ep = Event_point.create ~name:"tcp.port-80" () in
  let handler value =
    (* return the first payload word + value *)
    [
      Asm.Ld (Asm.r3, Asm.r1, 0);
      Alui (Insn.Add, Asm.r0, Asm.r3, value);
      Ret;
    ]
  in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine (fun () ->
         let add order value =
           match
             Event_point.add_handler ep fx.kernel ~cred:(user fx) ~order
               (seal_exn fx.kernel (handler value))
           with
           | Ok hid -> hid
           | Error e -> Alcotest.fail e
         in
         let _h2 = add 2 200 in
         let _h1 = add 1 100 in
         Event_point.dispatch ep fx.kernel ~payload:[| 7 |]));
  Kernel.run fx.kernel;
  Alcotest.(check int) "both handlers survived" 2 (Event_point.handler_count ep);
  Alcotest.(check int) "one event" 1 (Event_point.events_delivered ep);
  let results = Event_point.results ep in
  Alcotest.(check (list int)) "order-respecting results" [ 107; 207 ]
    (List.map snd results)

let test_event_handler_failure_isolated () =
  let fx = make_fixture () in
  let ep = Event_point.create ~name:"udp.port-2049" () in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine (fun () ->
         let good =
           seal_exn fx.kernel [ Asm.Li (Asm.r0, 1); Ret ]
         in
         let bad =
           seal_exn fx.kernel
             [ Asm.Li (Asm.r1, 0); Li (Asm.r2, 1); Alu (Insn.Div, Asm.r0, Asm.r2, Asm.r1); Ret ]
         in
         (match Event_point.add_handler ep fx.kernel ~cred:(user fx) ~order:1 bad with
         | Ok _ -> ()
         | Error e -> Alcotest.fail e);
         (match Event_point.add_handler ep fx.kernel ~cred:(user fx) ~order:2 good with
         | Ok _ -> ()
         | Error e -> Alcotest.fail e);
         Event_point.dispatch ep fx.kernel ~payload:[||]));
  Kernel.run fx.kernel;
  Alcotest.(check int) "bad handler removed (Rule 8)" 1
    (Event_point.handler_count ep);
  Alcotest.(check int) "failure recorded" 1 (Event_point.handler_failures ep);
  Alcotest.(check (list int)) "good handler answered" [ 1 ]
    (List.map snd (Event_point.results ep))

let test_nested_graft_transactions () =
  (* §3.1: "graft functions may indirectly invoke other grafts ... nested
     transactions. In this manner, any graft can abort without aborting
     its calling graft" — and conversely, a nested commit merges into the
     parent, so the child's committed work rolls back if the parent later
     aborts. *)
  let fx = make_fixture () in
  let inner =
    Graft_point.create ~name:"inner.point"
      ~default:(fun () -> 42)
      ~setup:(fun _ () -> ())
      ~read_result:(fun cpu () -> Ok (Cpu.reg cpu 0))
      ()
  in
  (* kernel function that lets a graft invoke the inner point *)
  let (_ : Kcall.fn) =
    Kernel.register_kcall fx.kernel ~name:"inner.run" (fun ctx ->
        Kcall.return ctx.Kcall.cpu
          (Graft_point.invoke inner fx.kernel ~cred:(user fx) ());
        Kcall.ok)
  in
  (* the inner graft mutates kernel state through the accessor, commits *)
  (match
     Graft_point.replace inner fx.kernel ~cred:(user fx)
       (seal_exn fx.kernel
          [
            Li (Asm.r1, 7);
            Kcall "counter.incr";
            Li (Asm.r0, 7);
            Ret;
          ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let counter = fx.counter in

  (* case 1: outer invokes inner then commits — state persists *)
  install_exn fx (seal_exn fx.kernel [ Kcall "inner.run"; Ret ]);
  let mgr = fx.kernel.Kernel.txn_mgr in
  let in_proc f =
    let out = ref None in
    ignore
      (Engine.spawn fx.kernel.Kernel.engine (fun () -> out := Some (f ())));
    Kernel.run fx.kernel;
    (match Engine.failures fx.kernel.Kernel.engine with
    | [] -> ()
    | (n, e) :: _ -> Alcotest.failf "%s: %s" n (Printexc.to_string e));
    Option.get !out
  in
  let v = in_proc (fun () -> Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0) in
  Alcotest.(check int) "outer returned inner's value" 7 v;
  Alcotest.(check int) "committed through both layers" 7 !counter;
  Alcotest.(check bool) "nested begin happened" true (Txn.begins mgr >= 2);

  (* case 2: inner commits but the outer then crashes — the merged undo
     rolls the inner's work back too *)
  counter := 0;
  install_exn fx
    (seal_exn fx.kernel
       [
         Kcall "inner.run";
         Li (Asm.r2, 0);
         Li (Asm.r3, 1);
         Alu (Insn.Div, Asm.r0, Asm.r3, Asm.r2);
         Ret;
       ]);
  (* inner graft was force-removed? no: inner still installed *)
  Alcotest.(check bool) "inner still grafted" true (Graft_point.grafted inner);
  let v2 = in_proc (fun () -> Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 4) in
  Alcotest.(check int) "outer fell back to default" 5 v2;
  Alcotest.(check int)
    "inner's committed change rolled back with the outer abort" 0 !counter;
  Alcotest.(check bool) "inner graft survived the outer's crash" true
    (Graft_point.grafted inner);

  (* case 3: the INNER graft crashes — outer proceeds with inner's default *)
  counter := 0;
  (match
     Graft_point.replace inner fx.kernel ~cred:(user fx)
       (seal_exn fx.kernel
          [ Li (Asm.r2, 0); Li (Asm.r3, 1); Alu (Insn.Div, Asm.r0, Asm.r3, Asm.r2); Ret ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  install_exn fx (seal_exn fx.kernel [ Kcall "inner.run"; Ret ]);
  let v3 = in_proc (fun () -> Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 0) in
  Alcotest.(check int) "outer committed with inner's default" 42 v3;
  Alcotest.(check bool) "outer graft survived the inner's abort" true
    (Graft_point.grafted fx.adder)

let test_audit_trail () =
  in_kernel (fun fx ->
      let module Audit = Vino_core.Audit in
      (* rejected load *)
      let bad = Vino_misfit.Image.seal_unsafe ~key:"evil" (Asm.assemble_exn doubler_graft) in
      ignore (Graft_point.replace fx.adder fx.kernel ~cred:(user fx) bad);
      (* successful install, failing run, forcible removal *)
      install_exn fx
        (seal_exn fx.kernel
           [ Li (Asm.r1, 1); Li (Asm.r2, 0); Alu (Insn.Div, Asm.r0, Asm.r1, Asm.r2); Ret ]);
      ignore (Graft_point.invoke fx.adder fx.kernel ~cred:(user fx) 1);
      let kinds =
        List.map
          (fun e ->
            match e.Audit.event with
            | Audit.Load_rejected _ -> "rejected"
            | Audit.Graft_installed _ -> "installed"
            | Audit.Graft_failed _ -> "failed"
            | Audit.Graft_removed _ -> "removed"
            | Audit.Handler_added _ | Audit.Handler_failed _ -> "handler"
            | Audit.Flow_violation _ -> "flow-violation"
            | Audit.Proof_stale _ -> "proof-stale"
            | Audit.Admission_rejected _ -> "admission")
          (Audit.entries fx.kernel.Kernel.audit)
      in
      Alcotest.(check (list string))
        "full lifecycle audited"
        [ "rejected"; "installed"; "failed"; "removed" ]
        kinds;
      Alcotest.(check int) "two failure entries" 2
        (List.length (Audit.failures fx.kernel.Kernel.audit)))

let test_event_payload_truncated_to_window () =
  (* an oversized event payload is clipped to the handler's window; the
     handler still runs and sees the clipped length in r2 *)
  let fx = make_fixture () in
  let ep = Event_point.create ~name:"clip.point" () in
  ignore
    (Engine.spawn fx.kernel.Kernel.engine (fun () ->
         (match
            Event_point.add_handler ep fx.kernel ~cred:(user fx)
              ~payload_words:4
              (seal_exn fx.kernel [ Mov (Asm.r0, Asm.r2); Ret ])
          with
         | Ok _ -> ()
         | Error e -> Alcotest.fail e);
         Event_point.dispatch ep fx.kernel ~payload:(Array.make 100 7)));
  Kernel.run fx.kernel;
  Alcotest.(check (list int)) "clipped length delivered" [ 4 ]
    (List.map snd (Event_point.results ep))

let test_segment_freed_on_remove () =
  in_kernel (fun fx ->
      let free0 = Vino_core.Segalloc.free_words fx.kernel.Kernel.segalloc in
      install_exn fx (seal_exn fx.kernel doubler_graft);
      Alcotest.(check bool) "memory in use" true
        (Vino_core.Segalloc.free_words fx.kernel.Kernel.segalloc < free0);
      Graft_point.remove fx.adder fx.kernel;
      Alcotest.(check int) "memory returned" free0
        (Vino_core.Segalloc.free_words fx.kernel.Kernel.segalloc))

let test_cred_and_namespace_basics () =
  Alcotest.(check bool) "root is privileged" true (Cred.is_privileged Cred.root);
  let u = Cred.user "u" ~limits:(Rlimit.zero ()) in
  Alcotest.(check bool) "users are not" false (Cred.is_privileged u);
  Alcotest.(check bool) "uids are fresh" true
    ((Cred.user "a" ~limits:(Rlimit.zero ())).Cred.uid
    <> (Cred.user "b" ~limits:(Rlimit.zero ())).Cred.uid);
  ignore (Format.asprintf "%a" Cred.pp u);
  let ns = Namespace.create () in
  let fx = make_fixture () in
  let h = Namespace.of_function_point fx.adder fx.kernel () in
  Namespace.register ns h;
  (match Namespace.register ns h with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate registration accepted");
  Namespace.unregister ns "adder.compute";
  Alcotest.(check (list string)) "unregistered" [] (Namespace.names ns)

(* ---- stale safety proofs (proof-carrying translation) ---- *)

let seal_verified_exn kernel items verify =
  match Kernel.seal ~verify kernel (Asm.assemble_exn items) with
  | Ok image -> image
  | Error e -> Alcotest.fail e

let proof_stale_audited kernel =
  List.exists
    (fun e ->
      match e.Vino_core.Audit.event with
      | Vino_core.Audit.Proof_stale _ -> true
      | _ -> false)
    (Vino_core.Audit.entries kernel.Kernel.audit)

let check_stale_error e =
  Alcotest.(check bool)
    (Printf.sprintf "error %S names the stale proof" e)
    true
    (String.length e >= 5 && String.sub e 0 5 = "stale")

(* An indirect call whose id the seal-time verifier proved constant and
   callable from an entry fact (r1 = 0, counter.incr) — so the
   [Checkcall] was elided and the proof records the callable-set
   assumption. Load-time static analysis has no entry facts and cannot
   re-derive the constant, so only the proof revalidation can notice the
   function was pulled off the graft-callable list after sealing. *)
let test_stale_proof_callable_rejected () =
  let fx = make_fixture () in
  let verify =
    Vino_verify.Verify.config
      ~entry:[ (1, Vino_verify.Verify.arg_at_most 0) ]
      ~words:64 ()
  in
  let image =
    seal_verified_exn fx.kernel [ Kcallr Asm.r1; Ret ] verify
  in
  let proof = Option.get image.Vino_misfit.Image.proof in
  Alcotest.(check (list int))
    "proof assumes id 0 is callable" [ 0 ]
    (Vino_verify.Proof.calls proof);
  Alcotest.(check bool) "checkcall elided from the sealed stream" false
    (Array.exists
       (function Insn.Checkcall _ -> true | _ -> false)
       image.Vino_misfit.Image.code);
  (match Vino_core.Linker.load fx.kernel ~words:64 image with
  | Ok loaded -> Vino_core.Linker.unload fx.kernel loaded
  | Error e -> Alcotest.failf "fresh proof rejected: %s" e);
  Kernel.set_callable fx.kernel 0 false;
  (match Vino_core.Linker.load fx.kernel ~words:64 image with
  | Ok _ -> Alcotest.fail "stale proof accepted after set_callable"
  | Error e -> check_stale_error e);
  Alcotest.(check bool) "Proof_stale audited" true
    (proof_stale_audited fx.kernel);
  (* restoring the function makes the same image loadable again *)
  Kernel.set_callable fx.kernel 0 true;
  match Vino_core.Linker.load fx.kernel ~words:64 image with
  | Ok loaded -> Vino_core.Linker.unload fx.kernel loaded
  | Error e -> Alcotest.failf "restored callable still rejected: %s" e

(* A proof discharged against a 1024-word segment must not license
   check elision in a 64-word one. *)
let test_stale_proof_words_rejected () =
  let fx = make_fixture () in
  let verify =
    Vino_verify.Verify.config
      ~entry:[ (1, Vino_verify.Verify.seg_window ()) ]
      ~words:1024 ()
  in
  let image =
    seal_verified_exn fx.kernel [ Ld (Asm.r2, Asm.r1, 0); Ret ] verify
  in
  Alcotest.(check int) "proof assumes 1024 words" 1024
    (Vino_verify.Proof.words (Option.get image.Vino_misfit.Image.proof));
  Alcotest.(check bool) "sandbox elided from the sealed stream" false
    (Array.exists
       (function Insn.Sandbox _ -> true | _ -> false)
       image.Vino_misfit.Image.code);
  (match Vino_core.Linker.load fx.kernel ~words:1024 image with
  | Ok loaded -> Vino_core.Linker.unload fx.kernel loaded
  | Error e -> Alcotest.failf "matching segment rejected: %s" e);
  (match Vino_core.Linker.load fx.kernel ~words:64 image with
  | Ok _ -> Alcotest.fail "undersized segment accepted against the proof"
  | Error e -> check_stale_error e);
  Alcotest.(check bool) "Proof_stale audited" true
    (proof_stale_audited fx.kernel)

let test_audit_pp_total () =
  let a = Vino_core.Audit.create () in
  Vino_core.Audit.record a ~now_us:1.
    (Vino_core.Audit.Load_rejected { point = "p"; reason = "r" });
  Vino_core.Audit.record a ~now_us:2.
    (Vino_core.Audit.Graft_installed { point = "p"; user = "u" });
  Vino_core.Audit.record a ~now_us:3.
    (Vino_core.Audit.Graft_failed { point = "p"; reason = "r" });
  Vino_core.Audit.record a ~now_us:4.
    (Vino_core.Audit.Graft_removed { point = "p" });
  Vino_core.Audit.record a ~now_us:5.
    (Vino_core.Audit.Handler_added { point = "p"; handler = 1; user = "u" });
  Vino_core.Audit.record a ~now_us:6.
    (Vino_core.Audit.Handler_failed { point = "p"; handler = 1; reason = "r" });
  Vino_core.Audit.record a ~now_us:7.
    (Vino_core.Audit.Proof_stale { point = "p"; reason = "r" });
  Alcotest.(check int) "count" 7 (Vino_core.Audit.count a);
  Alcotest.(check int) "failures" 4
    (List.length (Vino_core.Audit.failures a));
  ignore (Format.asprintf "%a" Vino_core.Audit.pp a);
  Vino_core.Audit.clear a;
  Alcotest.(check int) "cleared" 0 (Vino_core.Audit.count a)

let suite =
  [
    ( "core",
      [
        Alcotest.test_case "default runs when ungrafted" `Quick
          test_default_without_graft;
        Alcotest.test_case "graft replaces a member function (Fig 1)" `Quick
          test_graft_replaces_function;
        Alcotest.test_case "unsigned code rejected (Rule 6)" `Quick
          test_unsigned_code_rejected;
        Alcotest.test_case "tampered code rejected (Rule 6)" `Quick
          test_tampered_code_rejected;
        Alcotest.test_case "linker rejects non-callable targets (Rules 4/7)"
          `Quick test_linker_rejects_non_callable;
        Alcotest.test_case "indirect call blocked at runtime (Rule 7)" `Quick
          test_indirect_call_blocked_at_runtime;
        Alcotest.test_case "wild store confined (Rule 3)" `Quick
          test_wild_store_confined_and_harmless;
        Alcotest.test_case "infinite loop cut off, state undone (Rules 1/2/9)"
          `Quick test_infinite_loop_cut_off_and_undone;
        Alcotest.test_case "fault rolls back kernel state (Rule 9)" `Quick
          test_fault_rolls_back_kernel_state;
        Alcotest.test_case "successful graft commits kernel state" `Quick
          test_successful_graft_commits_kernel_state;
        Alcotest.test_case "result validation failure falls back" `Quick
          test_result_validation_failure;
        Alcotest.test_case "restricted points need privilege (Rule 5)" `Quick
          test_restricted_point_requires_privilege;
        Alcotest.test_case "resource limits enforced (Rule 2)" `Quick
          test_resource_limits_enforced;
        Alcotest.test_case "watchdog stops covert DoS (§2.5)" `Quick
          test_watchdog_stops_nonreturning_graft;
        Alcotest.test_case "shared app/graft window" `Quick test_shared_window;
        Alcotest.test_case "namespace lookup + replace (Fig 1)" `Quick
          test_namespace_install_flow;
        Alcotest.test_case "restricted event points need privilege" `Quick
          test_restricted_event_point;
        Alcotest.test_case "event handlers run in order (Fig 2)" `Quick
          test_event_point_handlers_run_in_order;
        Alcotest.test_case "event handler failure isolated" `Quick
          test_event_handler_failure_isolated;
        Alcotest.test_case "nested graft transactions (§3.1)" `Quick
          test_nested_graft_transactions;
        Alcotest.test_case "security events audited" `Quick
          test_audit_trail;
        Alcotest.test_case "cred and namespace basics" `Quick
          test_cred_and_namespace_basics;
        Alcotest.test_case "stale proof: revoked callable rejected" `Quick
          test_stale_proof_callable_rejected;
        Alcotest.test_case "stale proof: undersized segment rejected" `Quick
          test_stale_proof_words_rejected;
        Alcotest.test_case "audit pp is total" `Quick test_audit_pp_total;
        Alcotest.test_case "event payload clipped to window" `Quick
          test_event_payload_truncated_to_window;
        Alcotest.test_case "segment freed on removal" `Quick
          test_segment_freed_on_remove;
      ] );
  ]
