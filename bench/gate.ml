(* CI perf-regression gate over the BENCH_*.json files main.ml --json
   emits. Cycle counts in the simulator are virtual and deterministic, so
   any drift is a real code change; the 2% tolerance only forgives
   intentional small recosting, not noise.

   Usage:
     gate.exe check <baseline.json> <BENCH_*.json ...>
     gate.exe write <baseline.json> <BENCH_*.json ...>   write the baseline

   check exit codes:
     0  every gated row within tolerance
     1  regression (each offender reported with baseline vs measured)
     2  malformed input or usage error
     3  baseline file missing — run `gate.exe write` to create it

   Re-baseline after an intentional cost change:
     dune exec bench/main.exe -- quick --json && \
       dune exec bench/gate.exe -- write bench/baseline.json BENCH_*.json *)

module Json = Vino_trace.Json

let tolerance = 0.02
let exit_regression = 1
let exit_malformed = 2
let exit_no_baseline = 3

let die fmt =
  Printf.ksprintf (fun s -> prerr_endline s; exit exit_malformed) fmt

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> contents
  | exception Sys_error e -> die "gate: cannot read %s: %s" path e

let parse path =
  match Json.of_string (read_file path) with
  | Ok j -> j
  | Error e -> die "gate: %s: %s" path e

let str j name = match Json.member name j with
  | Some (Json.String s) -> s
  | _ -> die "gate: missing string field %S" name

(* A bench file as (table name, [(row label, cycles, incremental)]). *)
let load_bench path =
  let j = parse path in
  (match Json.member "schema" j with
  | Some (Json.String "vino-bench-v1") -> ()
  | _ -> die "gate: %s: not a vino-bench-v1 file" path);
  let rows =
    match Json.member "rows" j with
    | Some (Json.List rows) ->
        List.map
          (fun r ->
            let cycles =
              match Json.member "cycles" r with
              | Some c -> (
                  match Json.int_value c with
                  | Some n -> n
                  | None -> die "gate: %s: non-integer cycles" path)
              | None -> die "gate: %s: row without cycles" path
            in
            let incremental =
              match Json.member "incremental" r with
              | Some (Json.Bool b) -> b
              | _ -> false
            in
            (str r "label", cycles, incremental))
          rows
    | _ -> die "gate: %s: missing rows" path
  in
  (str j "name", rows)

(* BENCH_wall.json measures host wall-clock time (interpreter vs.
   translated execution), which is machine-dependent: informational
   artifact only, never gated and never baselined. *)
let drop_wall benches =
  List.filter
    (fun (name, _) ->
      if String.equal name "wall" then begin
        Printf.printf
          "skip   %-10s (host wall-clock; informational only)\n" name;
        false
      end
      else true)
    benches

(* Baseline schema: {schema; tables: {<table>: {<label>: cycles}}}.
   Only elapsed (non-incremental) rows are gated: the incremental lines
   are successive differences of them, so gating both would double-count
   and trip on sub-cycle deltas. *)
let baseline_of_benches benches =
  Json.Obj
    [
      ("schema", Json.String "vino-bench-baseline-v1");
      ( "tables",
        Json.Obj
          (List.map
             (fun (name, rows) ->
               ( name,
                 Json.Obj
                   (List.filter_map
                      (fun (label, cycles, incremental) ->
                        if incremental then None
                        else Some (label, Json.Int cycles))
                      rows) ))
             benches) );
    ]

let load_baseline path =
  let j = parse path in
  (match Json.member "schema" j with
  | Some (Json.String "vino-bench-baseline-v1") -> ()
  | _ -> die "gate: %s: not a vino-bench-baseline-v1 file" path);
  match Json.member "tables" j with
  | Some (Json.Obj tables) ->
      List.map
        (fun (name, rows) ->
          match rows with
          | Json.Obj fields ->
              ( name,
                List.map
                  (fun (label, v) ->
                    match Json.int_value v with
                    | Some n -> (label, n)
                    | None -> die "gate: %s: non-integer baseline" path)
                  fields )
          | _ -> die "gate: %s: bad table %s" path name)
        tables
  | _ -> die "gate: %s: missing tables" path

type offender = {
  otable : string;
  olabel : string;
  obase : int;
  onow : int option; (* None: the row vanished from the bench output *)
}

let delta_pct ~base ~now =
  100. *. (float_of_int now -. float_of_int base) /. float_of_int base

let check ~baseline benches =
  let offenders = ref [] in
  let checked = ref 0 in
  let report verdict table label base now =
    Printf.printf "%-6s %-10s %-40s %10d -> %10d (%+.2f%%)\n" verdict table
      label base now
      (delta_pct ~base ~now)
  in
  List.iter
    (fun (table, rows) ->
      match List.assoc_opt table baseline with
      | None -> Printf.printf "NEW    %-10s (no baseline; not gated)\n" table
      | Some base_rows ->
          let seen = ref [] in
          List.iter
            (fun (label, cycles, incremental) ->
              if not incremental then begin
                seen := label :: !seen;
                match List.assoc_opt label base_rows with
                | None ->
                    Printf.printf "NEW    %-10s %-40s (not gated)\n" table label
                | Some base ->
                    incr checked;
                    if
                      float_of_int cycles
                      > float_of_int base *. (1. +. tolerance)
                    then begin
                      offenders :=
                        { otable = table; olabel = label; obase = base;
                          onow = Some cycles }
                        :: !offenders;
                      report "FAIL" table label base cycles
                    end
                    else if cycles <> base then
                      report "ok" table label base cycles
              end)
            rows;
          List.iter
            (fun (label, _) ->
              if not (List.mem label !seen) then begin
                offenders :=
                  { otable = table; olabel = label;
                    obase = List.assoc label base_rows; onow = None }
                  :: !offenders;
                Printf.printf "FAIL   %-10s %-40s missing from bench output\n"
                  table label
              end)
            base_rows)
    benches;
  let offenders = List.rev !offenders in
  Printf.printf "bench gate: %d rows checked, %d regressions (tolerance %.0f%%)\n"
    !checked (List.length offenders) (100. *. tolerance);
  if offenders <> [] then begin
    prerr_endline "bench gate: REGRESSIONS —";
    List.iter
      (fun o ->
        match o.onow with
        | Some now ->
            Printf.eprintf
              "  %s / %s: baseline %d cycles, measured %d cycles (%+.2f%%, \
               tolerance %.0f%%)\n"
              o.otable o.olabel o.obase now
              (delta_pct ~base:o.obase ~now)
              (100. *. tolerance)
        | None ->
            Printf.eprintf
              "  %s / %s: baseline %d cycles, row missing from bench output\n"
              o.otable o.olabel o.obase)
      offenders;
    exit exit_regression
  end

let require_baseline path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf
      "gate: baseline %s does not exist — create it with\n\
      \  dune exec bench/main.exe -- quick --json && \
       dune exec bench/gate.exe -- write %s BENCH_*.json\n"
      path path;
    exit exit_no_baseline
  end;
  load_baseline path

let () =
  match Array.to_list Sys.argv with
  | _ :: "check" :: base_path :: bench_paths when bench_paths <> [] ->
      check ~baseline:(require_baseline base_path)
        (drop_wall (List.map load_bench bench_paths))
  | _ :: "write" :: base_path :: bench_paths when bench_paths <> [] ->
      let j =
        baseline_of_benches (drop_wall (List.map load_bench bench_paths))
      in
      Out_channel.with_open_text base_path (fun oc ->
          Out_channel.output_string oc (Json.to_string j));
      Printf.printf "wrote %s\n" base_path
  | _ ->
      prerr_endline
        "usage: gate.exe (check|write) <baseline.json> <BENCH_*.json ...>";
      exit exit_malformed
