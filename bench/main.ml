(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) from the simulator, and measures wall-clock costs of the
   same paths with Bechamel.

   Usage:
     bench/main.exe                 -- everything (default iterations)
     bench/main.exe -j 4 tables     -- fan table rows out over 4 domains
     bench/main.exe speedup         -- time tables at -j 1 vs -j N
     bench/main.exe quick           -- everything, fewer iterations
     bench/main.exe table3|table4|table5|table6|table7
     bench/main.exe disaster        -- recovery cost by injected fault class
     bench/main.exe abortmodel      -- the §4.5 equation
     bench/main.exe lockfactor      -- Figures 4/5
     bench/main.exe costbenefit     -- §4.1/§4.2/§4.3 cost-benefit analyses
     bench/main.exe ablations       -- design-choice ablations (DESIGN.md)
     bench/main.exe bechamel        -- wall-clock Bechamel suite only *)

open Vino_measure
module Trace = Vino_trace.Trace

(* --json: besides printing, write each table as BENCH_<name>.json
   (schema vino-bench-v1, see Table.to_json), computing the rows under a
   private trace sink so the emitted counters describe exactly that
   table's run. The sink never changes virtual cycle counts (zero-cost
   guarantee), so numbers match the plain run bit-for-bit. *)
let json_mode = ref false

let emit ~name ~title ?notes rows_fn =
  if !json_mode then begin
    let sink = Trace.create () in
    let rows = Trace.with_t sink rows_fn in
    Table.print ~title ?notes rows;
    let file = Printf.sprintf "BENCH_%s.json" name in
    Table.write_json ~file ~name ~title ~counters:(Trace.counters sink) rows;
    Printf.printf "wrote %s\n%!" file
  end
  else Table.print ~title ?notes (rows_fn ())

let table3 ~iterations ?pool () =
  emit ~name:"table3"
    ~title:"Table 3: Read-ahead graft overhead (Black Box; paper §4.1)"
    ~notes:
      "Note: our MiSFIT delta is smaller than the paper's 3us because the\n\
       IR graft is shorter than their compiled C++; every other component\n\
       matches."
    (fun () -> Sc_readahead.table ~iterations ?pool ())

let table4 ~iterations ?pool () =
  emit ~name:"table4"
    ~title:"Table 4: Page eviction graft overhead (Prioritization; §4.2)"
    ~notes:
      (Printf.sprintf
         "Graft overrules the default victim each run. Agreement case: %.1f \
          us\n\
          (paper: 39+120=159 us elapsed); overrule >> agreement matches."
         (Sc_evict.measure_agreement ~iterations ()))
    (fun () -> Sc_evict.table ~iterations ?pool ())

let table5 ~iterations ?pool () =
  emit ~name:"table5"
    ~title:"Table 5: Scheduling graft overhead (Prioritization; §4.3)"
    ~notes:
      "Largest increase comes from transaction+lock costs, ~2x the process\n\
       switch cost, as in the paper (~2% of a 10 ms timeslice)."
    (fun () -> Sc_sched.table ~iterations ?pool ())

let table6 ~iterations ?pool () =
  emit ~name:"table6"
    ~title:"Table 6: Encryption graft overhead (Stream; SFI worst case; §4.4)"
    ~notes:
      "MiSFIT roughly doubles the graft function: the graft is almost\n\
       entirely loads and stores."
    (fun () -> Sc_crypt.table ~iterations ?pool ())

let table7 ~iterations ?pool () =
  emit ~name:"table7"
    ~title:"Table 7: Graft abort costs (null vs full abort; §4.5)" (fun () ->
      Abort_model.table7 ~iterations ?pool ())

(* [wall:true] appends wall-clock rows comparing forked (snapshot-restored
   warmed sites) and fresh (site rebuilt per trial) campaigns. Only the
   standalone `disaster` dispatch passes it: the rows are host timings, so
   they are incremental (ungated) and must not appear in the `tables` run
   the parallel-determinism CI job byte-diffs. *)
let disaster ?(wall = false) ?pool () =
  emit ~name:"disaster"
    ~title:"Disaster rig: recovery cost by fault class (stream site; seeded)"
    ~notes:
      "Delta over the healthy row is detection + abort + removal. Lock-hog\n\
       and nested-fault rows include the contender whose time-out triggers\n\
       the abort; loop rows are budget-bound (200k cycles)."
    (fun () ->
      let rows = Sc_disaster.table ?pool () in
      if not wall then rows
      else begin
        let time f =
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          Unix.gettimeofday () -. t0
        in
        let count = 400 in
        let campaign ~fork ?pool () =
          Vino_disaster.Campaign.run ?pool ~fork ~seed:42 ~count ()
        in
        let fresh = time (fun () -> campaign ~fork:false ()) in
        let forked = time (fun () -> campaign ~fork:true ()) in
        let piped = time (fun () -> campaign ~fork:true ?pool ()) in
        rows
        @ [
            Table.overhead
              (Printf.sprintf "wall: fresh campaign, %d trials" count)
              (fresh *. 1e6);
            Table.overhead
              (Printf.sprintf "wall: forked campaign, %d trials" count)
              (forked *. 1e6);
            Table.overhead "wall: forked speedup over fresh (x)"
              (fresh /. forked);
            Table.overhead
              "wall: forked -jN pipeline speedup over fresh -j1 (x)"
              (fresh /. piped);
          ]
      end)

let abortmodel ~iterations ?pool () =
  Table.print
    ~title:"Section 4.5 model: abort cost = 35us + 10us*L + c*G"
    (Abort_model.model_table ~iterations ?pool ());
  let lo, hi = Abort_model.timeout_latency_bounds () in
  Printf.printf
    "Timeout latency with the 10 ms clock tick: %.0f..%.0f ms (paper: 10-20 \
     ms)\n\n"
    (Vino_vm.Costs.us_of_cycles lo /. 1000.)
    (Vino_vm.Costs.us_of_cycles hi /. 1000.)

let lockfactor ~iterations ?pool () =
  Table.print
    ~title:"Figures 4/5: conventional vs fully-factored get_lock"
    ~notes:
      "Two encapsulated decision points cost two ~35-cycle calls per\n\
       acquire; the factored manager lets a graft change the grant order\n\
       (reader-priority vs fifo-fair traces above)."
    (Lock_factor.table ~iterations ?pool ())

let fig3 () =
  print_endline
    {|Figure 3: the measured code paths (general graft structure)

        application request
               |
        [ indirection ]        <- removed on the Base path
               v
     +------------------------+
     |  graft point wrapper   |
     |  txn_begin ----------- |  <- Null path starts charging here
     |     |                  |
     |     v                  |
     |  [ graft function ]    |  <- Unsafe: raw code   Safe: MiSFIT-rewritten
     |     |   \- kcalls -> kernel accessors (undo logged, locks 2PL)
     |     v                  |
     |  results checking      |
     |     |                  |
     |  txn_commit / ABORT -- |  <- Abort path: undo replay + lock release
     +------------------------+
               |
               v
        default code on failure  (graft forcibly removed)
|};
  print_newline ()

(* -------------------------------------------------------------------- *)
(* Cost-benefit analyses (§4.1.1, §4.2.2, §4.3)                          *)
(* -------------------------------------------------------------------- *)

let costbenefit ~iterations () =
  let safe_ra = Sc_readahead.measure ~iterations Path.Safe in
  Printf.printf
    "== Cost-benefit (from the measured simulator paths) ==\n\
     Read-ahead graft (safe path): %.1f us per read. The application wins\n\
     whenever it computes more than that between reads (paper: 107 us; for\n\
     scale, summing a 4 KB block of integers costs ~137 us on the 120 MHz\n\
     target).\n"
    safe_ra;
  let overrule = Sc_evict.measure ~iterations Path.Safe in
  let base = Sc_evict.measure ~iterations Path.Base in
  let fault_us = 16_000. in
  Printf.printf
    "Page-eviction graft: overruling costs %.1f us over the %.1f us default;\n\
     avoiding one %.0f us page fault pays for ~%.0f disagreements (paper: \
     ~57).\n"
    (overrule -. base) base fault_us
    (fault_us /. (overrule -. base));
  let sched_safe = Sc_sched.measure ~iterations Path.Safe in
  Printf.printf
    "Scheduling graft: %.1f us per decision = %.1f%% of a 10 ms timeslice\n\
     (paper: ~2%%).\n\n"
    sched_safe
    (100. *. sched_safe /. 10_000.)

(* -------------------------------------------------------------------- *)
(* Ablations of DESIGN.md's design choices                               *)
(* -------------------------------------------------------------------- *)

let ablation_sfi ~iterations () =
  Printf.printf "== Ablation D1: SFI sandbox cost on the worst-case graft ==\n";
  let null = Sc_crypt.measure ~iterations Path.Null in
  let unsafe = Sc_crypt.measure ~iterations Path.Unsafe in
  let safe = Sc_crypt.measure ~iterations Path.Safe in
  Printf.printf
    "xor-8KB: unsafe %.1f us, safe %.1f us -> SFI adds %.0f%% to the graft\n\
     function (paper: 100-200%% for data-intensive grafts).\n\n"
    unsafe safe
    (100. *. (safe -. unsafe) /. (unsafe -. null))

let ablation_undo ~iterations () =
  Printf.printf "== Ablation D3: undo-stack depth vs abort cost ==\n";
  List.iter
    (fun undo ->
      Printf.printf "  %3d undo records: abort %.1f us\n" undo
        (Abort_model.abort_cost ~iterations ~locks:0 ~undo ()))
    [ 0; 4; 16; 64 ];
  print_newline ()

let ablation_timeout () =
  Printf.printf "== Ablation D4: timeout-tick resolution vs abort latency ==\n";
  List.iter
    (fun (label, tick) ->
      let e = Vino_sim.Engine.create () in
      let wheel = Vino_sim.Tick.create e ~tick () in
      let lat = ref 0 in
      ignore
        (Vino_sim.Engine.spawn e (fun () ->
             Vino_sim.Engine.delay 777;
             lat := Vino_sim.Tick.latency wheel ~after:tick));
      Vino_sim.Engine.run e;
      Printf.printf "  tick %-8s nominal-timeout latency: %8.2f ms\n" label
        (Vino_vm.Costs.us_of_cycles !lat /. 1000.))
    [
      ("10 ms", Vino_sim.Tick.default_tick);
      ("1 ms", Vino_sim.Tick.default_tick / 10);
      ("100 us", Vino_sim.Tick.default_tick / 100);
    ];
  print_newline ()

let ablation_elevator () =
  Printf.printf "== Ablation: disk scheduling (FIFO vs elevator) ==\n";
  List.iter
    (fun (label, scheduling) ->
      let e = Vino_sim.Engine.create () in
      let disk = Vino_fs.Disk.create e ~scheduling () in
      let t0 = ref 0 and t1 = ref 0 in
      ignore
        (Vino_sim.Engine.spawn e (fun () ->
             t0 := Vino_sim.Engine.now e;
             let pending = ref 40 in
             let done_ = Vino_sim.Waitq.create e in
             for k = 1 to 40 do
               Vino_fs.Disk.submit disk Vino_fs.Disk.Read
                 ~block:(k * 6101 mod 200_000)
                 ~on_complete:(fun () ->
                   decr pending;
                   if !pending = 0 then ignore (Vino_sim.Waitq.signal done_))
             done;
             Vino_sim.Waitq.wait done_;
             t1 := Vino_sim.Engine.now e));
      Vino_sim.Engine.run e;
      Printf.printf "  %-9s 40 scattered reads: %8.1f ms\n" label
        (Vino_vm.Costs.us_of_cycles (!t1 - !t0) /. 1000.))
    [ ("FIFO", Vino_fs.Disk.Fifo); ("elevator", Vino_fs.Disk.Elevator) ];
  print_newline ()

let calibrate () =
  Table.print
    ~title:"Per-resource time-out calibration (paper §3.2/§4.5 future work)"
    ~notes:
      "For bitmap-style locks the recommended time-out (~18 us) is far
       below the 10 ms tick: hog recovery is tick-bound at ~10 ms — the
       paper's 'obviously too coarse grain for some resources'."
    (Timeout_calib.table ())

let ablation_extension_technologies () =
  (* A Comparison of OS Extension Technologies (paper §5, ref [16]): run the
     same xor-8KB transform unprotected, MiSFIT-rewritten, and inside a
     bounds-checking interpreted environment. *)
  Printf.printf
    "== Ablation: extension technologies on xor-8KB (paper §5 / [16]) ==\n";
  let words = 2048 in
  let data = Array.init words (fun k -> k) in
  let run ~rewritten ~checked =
    let mem = Vino_vm.Mem.create (8 * 1024) in
    let seg = Vino_vm.Mem.segment ~base:4096 ~size:4096 in
    Array.iteri (fun k v -> Vino_vm.Mem.store mem (4096 + k) v) data;
    let obj =
      Vino_vm.Asm.assemble_exn
        (Vino_stream.Grafts.xor_encrypt_source ~key:0xAB)
    in
    let code =
      if rewritten then
        match Vino_misfit.Rewrite.process obj.Vino_vm.Asm.code with
        | Ok c -> c
        | Error e -> failwith e
      else obj.Vino_vm.Asm.code
    in
    let cpu = Vino_vm.Cpu.make ~mem ~seg ~checked () in
    Vino_vm.Cpu.set_reg cpu 1 4096;
    Vino_vm.Cpu.set_reg cpu 2 (4096 + words);
    Vino_vm.Cpu.set_reg cpu 3 words;
    match Vino_vm.Cpu.run Vino_vm.Cpu.env_trusted cpu code with
    | Vino_vm.Cpu.Halted -> Vino_vm.Costs.us_of_cycles (Vino_vm.Cpu.cycles cpu)
    | o -> failwith (Format.asprintf "%a" Vino_vm.Cpu.pp_outcome o)
  in
  let unprotected = run ~rewritten:false ~checked:false in
  let sfi = run ~rewritten:true ~checked:false in
  let interpreted = run ~rewritten:false ~checked:true in
  Printf.printf
    "  unprotected (trusted)         %8.1f us\n\
    \  MiSFIT SFI                    %8.1f us  (+%.0f%%)\n\
    \  bounds-checking interpreter   %8.1f us  (+%.0f%%)\n\
     SFI beats interpretation, as [16] reports.\n\n"
    unprotected sfi
    (100. *. (sfi -. unprotected) /. unprotected)
    interpreted
    (100. *. (interpreted -. unprotected) /. unprotected)

let ablations ~iterations () =
  ablation_sfi ~iterations ();
  ablation_extension_technologies ();
  ablation_undo ~iterations ();
  ablation_timeout ();
  ablation_elevator ();
  calibrate ()

(* -------------------------------------------------------------------- *)
(* Bechamel wall-clock suite: one group per table                        *)
(* -------------------------------------------------------------------- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let path_test measure path =
    Test.make
      ~name:(Path.name path)
      (Staged.stage (fun () -> ignore (measure path : float)))
  in
  let per_table name measure =
    Test.make_grouped ~name
      (List.map (path_test measure) [ Path.Base; Path.Null; Path.Safe ])
  in
  let tests =
    Test.make_grouped ~name:"vino"
      [
        per_table "table3-readahead" (Sc_readahead.measure ~iterations:2);
        per_table "table4-evict" (Sc_evict.measure ~iterations:2);
        per_table "table5-sched" (Sc_sched.measure ~iterations:2);
        per_table "table6-crypt" (Sc_crypt.measure ~iterations:2);
        Test.make_grouped ~name:"table7-abort"
          [
            Test.make ~name:"abort-0-locks"
              (Staged.stage (fun () ->
                   ignore
                     (Abort_model.abort_cost ~iterations:2 ~locks:0 ~undo:0 ()
                       : float)));
            Test.make ~name:"abort-8-locks"
              (Staged.stage (fun () ->
                   ignore
                     (Abort_model.abort_cost ~iterations:2 ~locks:8 ~undo:0 ()
                       : float)));
          ];
        Test.make_grouped ~name:"substrate"
          [
            Test.make ~name:"misfit-rewrite-xor"
              (Staged.stage (fun () ->
                   let obj =
                     Vino_vm.Asm.assemble_exn
                       (Vino_stream.Grafts.xor_encrypt_source ~key:7)
                   in
                   ignore (Vino_misfit.Rewrite.process obj.Vino_vm.Asm.code)));
            Test.make ~name:"image-seal"
              (Staged.stage (fun () ->
                   let obj =
                     Vino_vm.Asm.assemble_exn
                       (Vino_stream.Grafts.xor_encrypt_source ~key:7)
                   in
                   ignore (Vino_misfit.Image.seal ~key:"bench" obj)));
          ];
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  print_endline "== Bechamel wall-clock suite (ns per run) ==";
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> Printf.printf "  %-45s %12.0f ns\n" name est
         | Some _ | None -> Printf.printf "  %-45s %12s\n" name "-");
  print_newline ()

let all ~iterations ?pool () =
  fig3 ();
  table3 ~iterations ?pool ();
  table4 ~iterations ?pool ();
  table5 ~iterations ?pool ();
  table6 ~iterations ?pool ();
  table7 ~iterations ?pool ();
  disaster ?pool ();
  abortmodel ~iterations ?pool ();
  lockfactor ~iterations ?pool ();
  costbenefit ~iterations ();
  ablations ~iterations ();
  bechamel_suite ()

let serve ?pool () =
  emit ~name:"serve"
    ~title:
      "Serve: multi-tenant graft server (throughput + latency SLOs, by \
       path and tenant count)"
    ~notes:
      "Arrival-to-response latency of an open-loop multi-tenant workload\n\
       (admission control, inherited per-tenant rlimits, bounded LRU\n\
       translation cache). Throughput lines are informational (req/s, not\n\
       us); percentile and makespan lines are gated."
    (fun () -> Sc_serve.table ?pool ())

(* The tables the bench gate watches: every paper table plus the
   disaster recovery-cost table and the multi-tenant serve table. *)
let tables ~iterations ?pool () =
  table3 ~iterations ?pool ();
  table4 ~iterations ?pool ();
  table5 ~iterations ?pool ();
  table6 ~iterations ?pool ();
  table7 ~iterations ?pool ();
  disaster ?pool ();
  serve ?pool ()

(* Time the gated tables serial vs fanned-out and report the ratio.
   Table output is squelched; only the timing summary survives. *)
let speedup ~jobs () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let quiet f () =
    let saved = Unix.dup Unix.stdout in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 null Unix.stdout;
    Unix.close null;
    Fun.protect
      ~finally:(fun () ->
        flush stdout;
        Unix.dup2 saved Unix.stdout;
        Unix.close saved)
      f
  in
  let serial = time (quiet (fun () -> tables ~iterations:60 ())) in
  let pool = Vino_par.Pool.create ~domains:jobs () in
  let parallel =
    Fun.protect
      ~finally:(fun () -> Vino_par.Pool.shutdown pool)
      (fun () -> time (quiet (fun () -> tables ~iterations:60 ~pool ())))
  in
  Printf.printf
    "bench speedup (gated tables, quick iterations):\n\
    \  -j 1   %8.2f s\n\
    \  -j %-2d  %8.2f s\n\
    \  speedup %.2fx on %d available core(s)\n"
    serial jobs parallel (serial /. parallel)
    (Domain.recommended_domain_count ())

let usage () =
  prerr_endline
    "usage: main.exe [--json] [-j N] \
     [quick|tables|table3|table4|table5|table6|table7|disaster|serve|abortmodel|lockfactor|costbenefit|ablations|calibrate|speedup|bechamel]";
  exit 1

let () =
  let iterations = 300 in
  let args = Array.to_list Sys.argv in
  json_mode := List.mem "--json" args;
  let args = List.filter (fun a -> a <> "--json") args in
  (* -j N: fan tables out over N domains (default: all recommended
     domains; -j 1 is byte-for-byte the serial code path). *)
  let rec split_jobs acc = function
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | Some _ | None ->
            prerr_endline "main.exe: -j expects a positive integer";
            exit 1)
    | "-j" :: [] ->
        prerr_endline "main.exe: -j expects a positive integer";
        exit 1
    | a :: rest -> split_jobs (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs_opt, args = split_jobs [] args in
  let jobs =
    match jobs_opt with
    | Some j -> j
    | None -> Domain.recommended_domain_count ()
  in
  let with_pool f =
    if jobs <= 1 then f ?pool:None ()
    else
      let pool = Vino_par.Pool.create ~domains:jobs () in
      Fun.protect
        ~finally:(fun () -> Vino_par.Pool.shutdown pool)
        (fun () -> f ?pool:(Some pool) ())
  in
  match args with
  | [ _ ] -> with_pool (all ~iterations)
  | [ _; "quick" ] ->
      (* --json quick only runs the gated tables: the ablations and the
         wall-clock suite have no JSON form and would dominate the run *)
      if !json_mode then with_pool (tables ~iterations:60)
      else with_pool (all ~iterations:60)
  | [ _; "tables" ] -> with_pool (tables ~iterations)
  | [ _; "table3" ] -> with_pool (table3 ~iterations)
  | [ _; "table4" ] -> with_pool (table4 ~iterations)
  | [ _; "table5" ] -> with_pool (table5 ~iterations)
  | [ _; "table6" ] -> with_pool (table6 ~iterations)
  | [ _; "table7" ] -> with_pool (table7 ~iterations)
  | [ _; "disaster" ] -> with_pool (fun ?pool () -> disaster ~wall:true ?pool ())
  | [ _; "serve" ] -> with_pool (fun ?pool () -> serve ?pool ())
  | [ _; "abortmodel" ] -> with_pool (abortmodel ~iterations)
  | [ _; "lockfactor" ] -> with_pool (lockfactor ~iterations)
  | [ _; "costbenefit" ] -> costbenefit ~iterations ()
  | [ _; "ablations" ] -> ablations ~iterations ()
  | [ _; "calibrate" ] -> calibrate ()
  | [ _; "fig3" ] -> fig3 ()
  | [ _; "speedup" ] ->
      (* the reference comparison point is 4 domains unless -j overrides *)
      let jobs =
        match jobs_opt with Some j -> max j 2 | None -> max 4 jobs
      in
      speedup ~jobs ()
  | [ _; "bechamel" ] -> bechamel_suite ()
  | _ -> usage ()
