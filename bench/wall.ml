(* Host wall-clock harness: interpreter vs. closure-threaded translation.

   Everything else in bench/ measures *virtual* cycles, which are
   bit-identical across execution modes by construction. This harness
   measures the one thing that is allowed to differ — how long the host
   takes to execute a graft — on the four paper grafts, MiSFIT-rewritten
   (the safe path), run to completion under a permissive stub
   environment.

   The timed loops recycle one cpu per (graft, mode): each invocation is
   [Cpu.reset] + argument registers + [Cpu.refuel] + run, with no
   optional arguments anywhere on the path, so a translated invocation
   performs zero minor-heap allocations (measured and gated below).
   Memory images are initialised once. Before timing, both modes run
   once on a fresh cpu and every architectural observable (outcome,
   cycles, instruction/access counters, registers) is asserted equal, so
   the numbers compare the same computation.

   The encryption graft is additionally measured proof-carrying
   ("crypt-verified"): sealed under the static verifier with the graft
   point's entry facts, then translated with the carried proof so every
   proven-safe access compiles to a bare superinstruction. Parity is
   asserted against the interpreter on the same verified-sealed code.

   Usage:
     wall.exe [--check]    --check exits 1 unless translation is >= 5x
                           faster than the interpreter on the encryption
                           graft and >= 6x on its proof-carrying variant,
                           and every translated graft allocates 0 minor
                           words per invocation (the ISSUE acceptance
                           bars)

   Writes BENCH_wall.json (schema vino-bench-v1; table name "wall").
   The gate skips it: host time is machine-dependent, informational
   only. *)

module Insn = Vino_vm.Insn
module Cpu = Vino_vm.Cpu
module Mem = Vino_vm.Mem
module Jit = Vino_vm.Jit
module Asm = Vino_vm.Asm
module Costs = Vino_vm.Costs
module Json = Vino_trace.Json

let mem_words = 1 lsl 15
let seg_base = mem_words / 2
let seg_size = mem_words / 2
let fuel = 1_000_000_000

type workload = {
  name : string;
  source : Asm.item list;
  init : Mem.t -> unit;  (* one-time memory image *)
  setup : Cpu.t -> unit;  (* per-invocation argument registers *)
}

(* Stub kernel environment: every kernel call succeeds without touching
   the cpu, every indirect-call id probes as callable, no aborts
   pending. Identical for both modes, so it cancels out. *)
let env =
  {
    Cpu.kcall = (fun _ _ -> Cpu.K_ok);
    call_ok = (fun _ -> true);
    poll = (fun () -> None);
  }

let workloads =
  [
    (* one-instruction graft: the whole invocation is entry dispatch, so
       this row is the pure per-invocation overhead of each mode *)
    { name = "nop"; source = [ Asm.Halt ]; init = ignore; setup = ignore };
    (* app-directed read-ahead (Table 3): dispatch-dominated *)
    {
      name = "readahead";
      source = Vino_fs.Readahead.app_directed_source ~lock_kcall:"ra.lock";
      init = (fun mem -> Mem.store mem (seg_base + Vino_fs.Readahead.pattern_slot) 17);
      setup = (fun cpu -> Cpu.set_reg cpu 4 seg_base);
    };
    (* protect-hot-pages eviction (Table 4): scan-heavy *)
    {
      name = "evict";
      source = Vino_vmem.Grafts.protect_hot_pages_source ();
      init =
        (fun mem ->
          (* shared window at the segment base: 64 protected pages; the
             candidate list right after is all-protected, so every
             invocation walks the full 64x64 is_protected scan *)
          Mem.store mem seg_base 64;
          for k = 1 to 64 do
            Mem.store mem (seg_base + k) k
          done;
          for j = 0 to 63 do
            Mem.store mem (seg_base + 128 + j) (j + 1)
          done);
      setup =
        (fun cpu ->
          Cpu.set_reg cpu 1 1;
          Cpu.set_reg cpu 2 (seg_base + 128);
          Cpu.set_reg cpu 3 64;
          Cpu.set_reg cpu 4 seg_base);
    };
    (* scan-process-list delegate (Table 5): call-heavy *)
    {
      name = "sched";
      source = Vino_sched.Grafts.scan_and_return_self_source ();
      init =
        (fun mem ->
          for k = 0 to 127 do
            Mem.store mem (seg_base + k) 0
          done);
      setup =
        (fun cpu ->
          Cpu.set_reg cpu 1 7;
          Cpu.set_reg cpu 2 seg_base;
          Cpu.set_reg cpu 3 128);
    };
    (* xor encryption of 2048 words (Table 6): the SFI worst case and
       the acceptance workload for the >= 3x speedup bar *)
    {
      name = "crypt";
      source = Vino_stream.Grafts.xor_encrypt_source ~key:0x5EC2E7;
      init =
        (fun mem ->
          for k = 0 to 2047 do
            Mem.store mem (seg_base + k) k
          done);
      setup =
        (fun cpu ->
          Cpu.set_reg cpu 1 seg_base;
          Cpu.set_reg cpu 2 (seg_base + 2048);
          Cpu.set_reg cpu 3 2048);
    };
  ]

(* The proof-carrying variant of the encryption graft: the same entry
   facts Sc_crypt's Verified path establishes, scaled to this harness's
   segment. The interval analysis proves every load/store of the
   transform loop in-segment, so the whole per-word load+store pair
   compiles bare. *)
let crypt_verifier =
  Vino_verify.Verify.config
    ~entry:
      [
        (1, Vino_verify.Verify.seg_window ());
        (2, Vino_verify.Verify.seg_window ~off:2048 ());
        (3, Vino_verify.Verify.arg_at_most 2048);
      ]
    ~words:seg_size ()

(* Seal through MiSFIT (the safe path) and patch relocations to a stub
   id, exactly as the linker would. Patching replaces the placeholder in
   place, so the proof's per-pc safe map stays aligned. *)
let rewritten_proved ?verifier w =
  let obj = Asm.assemble_exn w.source in
  match Vino_misfit.Image.seal ?verifier ~key:"wall-bench" obj with
  | Error e -> failwith (w.name ^ ": MiSFIT rejected: " ^ e)
  | Ok image ->
      let code = Array.copy image.Vino_misfit.Image.code in
      List.iter
        (fun r -> code.(r.Vino_vm.Asm.index) <- Insn.Kcall 1)
        image.Vino_misfit.Image.relocs;
      (code, image.Vino_misfit.Image.proof)

let rewritten w = fst (rewritten_proved w)

type sample = {
  outcome : Cpu.outcome;
  cycles : int;
  insns : int;
  accesses : int;
  regs : int array;
}

let invoke ~mem ~seg ~setup step =
  let cpu = Cpu.make ~mem ~seg () in
  setup cpu;
  Cpu.refuel cpu fuel;
  let outcome = step cpu in
  {
    outcome;
    cycles = Cpu.cycles cpu;
    insns = Cpu.insns_executed cpu;
    accesses = Cpu.mem_accesses cpu;
    regs = Array.copy (cpu : Cpu.t).regs;
  }

let assert_parity name (a : sample) (b : sample) =
  if
    a.outcome <> b.outcome
    || a.cycles <> b.cycles
    || a.insns <> b.insns
    || a.accesses <> b.accesses
    || a.regs <> b.regs
  then begin
    Format.eprintf
      "wall: %s: interpreter and translation disagree\n\
      \  interp: %a cycles=%d insns=%d accesses=%d\n\
      \  trans:  %a cycles=%d insns=%d accesses=%d\n"
      name Cpu.pp_outcome a.outcome a.cycles a.insns a.accesses
      Cpu.pp_outcome b.outcome b.cycles b.insns b.accesses;
    exit 2
  end;
  match a.outcome with
  | Cpu.Halted -> ()
  | o ->
      Format.eprintf "wall: %s: unexpected outcome %a\n" name Cpu.pp_outcome
        o;
      exit 2

(* Host timing is noisy (scheduling, frequency scaling), so the two
   modes are timed in alternating repetitions and each reports its best
   (minimum) repetition: the minimum estimates the uncontended cost, and
   alternating keeps a slow machine phase from landing on one mode
   only. *)
let reps = 7

let batch_for run =
  for _ = 1 to 50 do
    run ()
  done;
  let rec go batch =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      run ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.08 then go (batch * 2) else batch
  in
  go 64

let timed batch run =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batch do
    run ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int batch

(* Seconds per invocation for each of two runners, interleaved. *)
let time_pair runa runb =
  let ba = batch_for runa and bb = batch_for runb in
  let besta = ref infinity and bestb = ref infinity in
  for _ = 1 to reps do
    besta := Float.min !besta (timed ba runa);
    bestb := Float.min !bestb (timed bb runb)
  done;
  (!besta, !bestb)

type measurement = {
  wname : string;
  interp_insns : int;
  trans_insns : int;
  interp_s : float;
  trans_s : float;
  trans_words : float;  (* minor words per translated invocation *)
  blocks : int;
  fused : int;
  elided : int;
}

(* Minor-heap words per invocation of [run], in steady state: a couple
   of warmup calls first (the driver-context pool, the cpu's call-stack
   array and counter batches all reach fixed size there), then the
   [Gc.minor_words] delta over a large batch. The cost of reading the
   counter itself (it boxes a float) is measured and subtracted. *)
let alloc_rounds = 10_000

let minor_words_per_invocation run =
  run ();
  run ();
  let p0 = Gc.minor_words () in
  let p1 = Gc.minor_words () in
  let probe = p1 -. p0 in
  let w0 = Gc.minor_words () in
  for _ = 1 to alloc_rounds do
    run ()
  done;
  let w1 = Gc.minor_words () in
  Float.max 0. (w1 -. w0 -. probe) /. float_of_int alloc_rounds

let measure_code ~name ~code ~safe w =
  let trans = Jit.translate ?safe code in
  let mem = Mem.create mem_words in
  let seg = Mem.segment ~base:seg_base ~size:seg_size in
  w.init mem;
  (* parity on the one-shot harness, outside the timed loops *)
  let si = invoke ~mem ~seg ~setup:w.setup (fun cpu -> Cpu.run env cpu code) in
  let st =
    invoke ~mem ~seg ~setup:w.setup (fun cpu -> Jit.run env cpu trans)
  in
  assert_parity name si st;
  (* Timed invocations recycle one cpu per mode. Nothing on this path
     takes an optional argument ([Some] boxes two words), so the
     translated runner is allocation-free in steady state — asserted by
     the --check gate below. *)
  let icpu = Cpu.make ~mem ~seg () in
  let tcpu = Cpu.make ~mem ~seg () in
  let run_interp () =
    Cpu.reset icpu;
    w.setup icpu;
    Cpu.refuel icpu fuel;
    ignore (Cpu.run env icpu code : Cpu.outcome)
  in
  let run_trans () =
    Cpu.reset tcpu;
    w.setup tcpu;
    Cpu.refuel tcpu fuel;
    ignore (Jit.run env tcpu trans : Cpu.outcome)
  in
  let interp_s, trans_s = time_pair run_interp run_trans in
  let trans_words = minor_words_per_invocation run_trans in
  {
    wname = name;
    interp_insns = si.insns;
    trans_insns = st.insns;
    interp_s;
    trans_s;
    trans_words;
    blocks = Jit.block_count trans;
    fused = Jit.fused_pairs trans;
    elided = Jit.elided_accesses trans;
  }

let measure w = measure_code ~name:w.name ~code:(rewritten w) ~safe:None w

(* Proof-carrying measurement: the same graft sealed under the verifier
   (sandboxes already elided at rewrite time) and translated with the
   carried proof, so the surviving proven accesses compile bare. Parity
   is asserted against the interpreter on the same verified-sealed code;
   the reported speedup, like every row in this table, is against the
   workload's sandboxed safe-path interpreter ([baseline]) — one common
   denominator, so the verified row reads as "what the whole verified
   pipeline buys over interpreting the safe path", the gap the ISSUE
   asks to close. *)
let measure_verified w verifier ~baseline =
  let code, proof = rewritten_proved ~verifier w in
  match proof with
  | None -> failwith (w.name ^ ": verifier produced no proof")
  | Some p ->
      let m =
        measure_code ~name:(w.name ^ "-verified") ~code
          ~safe:(Some (Vino_verify.Proof.safe p))
          w
      in
      {
        m with
        interp_s = baseline.interp_s;
        interp_insns = baseline.interp_insns;
      }

let ns s = s *. 1e9

let row_json m =
  let mode_row ?words label secs insns =
    let base =
      [
        ("label", Json.String label);
        (* integer ns/invocation doubles as the "cycles" field the
           vino-bench-v1 schema requires of every row *)
        ("cycles", Json.Int (int_of_float (Float.round (ns secs))));
        ("ns_per_invocation", Json.Float (ns secs));
        ("ns_per_graft_insn", Json.Float (ns secs /. float_of_int insns));
        ("invocations_per_sec", Json.Float (1. /. secs));
        ("graft_insns", Json.Int insns);
        ("incremental", Json.Bool false);
      ]
    in
    let extra =
      match words with
      | None -> []
      | Some w -> [ ("minor_words_per_invocation", Json.Float w) ]
    in
    Json.Obj (base @ extra)
  in
  [
    mode_row (m.wname ^ "/interp") m.interp_s m.interp_insns;
    mode_row ~words:m.trans_words
      (m.wname ^ "/translated")
      m.trans_s m.trans_insns;
  ]

let report ms =
  Printf.printf
    "== Wall-clock: interpreter vs. closure-threaded translation ==\n\
     %-14s %12s %14s %14s %10s %10s %8s %6s %6s\n"
    "graft" "insns/invoc" "interp ns/insn" "trans ns/insn" "speedup"
    "words/inv" "blocks" "fused" "bare";
  List.iter
    (fun m ->
      Printf.printf "%-14s %12d %14.2f %14.2f %9.2fx %10.3f %8d %6d %6d\n"
        m.wname m.trans_insns
        (ns m.interp_s /. float_of_int m.interp_insns)
        (ns m.trans_s /. float_of_int m.trans_insns)
        (m.interp_s /. m.trans_s)
        m.trans_words m.blocks m.fused m.elided)
    ms;
  let j =
    Json.Obj
      [
        ("schema", Json.String "vino-bench-v1");
        ("name", Json.String "wall");
        ( "title",
          Json.String
            "Host wall-clock: interpreter vs. translated graft execution"
        );
        ("rows", Json.List (List.concat_map row_json ms));
        ( "speedup",
          Json.Obj
            (List.map
               (fun m -> (m.wname, Json.Float (m.interp_s /. m.trans_s)))
               ms) );
      ]
  in
  let file = "BENCH_wall.json" in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Json.to_string j));
  Printf.printf "wrote %s\n%!" file

let check_bar ms name bar =
  match List.find_opt (fun m -> m.wname = name) ms with
  | Some m when m.interp_s /. m.trans_s >= bar -> ()
  | Some m ->
      Printf.eprintf "wall: %s speedup %.2fx is below the %gx bar\n" name
        (m.interp_s /. m.trans_s)
        bar;
      exit 1
  | None ->
      Printf.eprintf "wall: no %s workload\n" name;
      exit 1

(* The zero-allocation gate: a translated invocation must not touch the
   minor heap. The threshold of half a word absorbs only measurement
   noise from the boxed [Gc.minor_words] reads — one real allocation per
   invocation (a cons cell is three words) fails by 6x. *)
let check_alloc ms =
  List.iter
    (fun m ->
      if m.trans_words >= 0.5 then begin
        Printf.eprintf
          "wall: %s/translated allocates %.3f minor words per invocation \
           (gate: 0)\n"
          m.wname m.trans_words;
        exit 1
      end)
    ms

let () =
  let check = Array.to_list Sys.argv |> List.mem "--check" in
  let ms = List.map measure workloads in
  let ms =
    ms
    @ [
        measure_verified
          (List.find (fun w -> w.name = "crypt") workloads)
          crypt_verifier
          ~baseline:(List.find (fun m -> m.wname = "crypt") ms);
      ]
  in
  report ms;
  if check then begin
    check_bar ms "crypt" 5.0;
    check_bar ms "crypt-verified" 6.0;
    check_alloc ms
  end
